// AES and block-mode tests: FIPS-197 / SP 800-38A known-answer tests plus
// roundtrip and tamper properties.
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/modes.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace wideleak::crypto {
namespace {

// --- FIPS-197 known answers ---------------------------------------------

TEST(Aes, Fips197Aes128) {
  const Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  const Bytes plain = hex_decode("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(plain.data(), out);
  EXPECT_EQ(hex_encode(BytesView(out, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key =
      hex_decode("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes plain = hex_decode("00112233445566778899aabbccddeeff");
  const Aes aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(plain.data(), out);
  EXPECT_EQ(hex_encode(BytesView(out, 16)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, Sp800_38aVector) {
  // SP 800-38A F.1.1 ECB-AES128 block #1.
  const Aes aes(hex_decode("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes plain = hex_decode("6bc1bee22e409f96e93d7e117393172a");
  std::uint8_t out[16];
  aes.encrypt_block(plain.data(), out);
  EXPECT_EQ(hex_encode(BytesView(out, 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, DecryptInvertsEncrypt) {
  Rng rng(1);
  for (const std::size_t key_len : {std::size_t{16}, std::size_t{32}}) {
    const Aes aes(rng.next_bytes(key_len));
    for (int i = 0; i < 20; ++i) {
      AesBlock block;
      const Bytes random = rng.next_bytes(16);
      std::copy(random.begin(), random.end(), block.begin());
      EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(block)), block);
    }
  }
}

TEST(Aes, RejectsBadKeySizes) {
  Rng rng(2);
  EXPECT_THROW(Aes(rng.next_bytes(0)), std::invalid_argument);
  EXPECT_THROW(Aes(rng.next_bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes(rng.next_bytes(24)), std::invalid_argument);  // AES-192 unsupported
  EXPECT_THROW(Aes(rng.next_bytes(33)), std::invalid_argument);
}

TEST(Aes, RoundCounts) {
  Rng rng(3);
  EXPECT_EQ(Aes(rng.next_bytes(16)).rounds(), 10);
  EXPECT_EQ(Aes(rng.next_bytes(32)).rounds(), 14);
}

// --- CBC ------------------------------------------------------------------

TEST(CbcMode, Sp800_38aCbcAes128) {
  // SP 800-38A F.2.1 CBC-AES128.Encrypt, first block.
  const Aes aes(hex_decode("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes iv = hex_decode("000102030405060708090a0b0c0d0e0f");
  const Bytes plain = hex_decode("6bc1bee22e409f96e93d7e117393172a");
  const Bytes ct = aes_cbc_encrypt_nopad(aes, iv, plain);
  EXPECT_EQ(hex_encode(ct), "7649abac8119b246cee98e9b12e9197d");
}

TEST(CbcMode, PaddedRoundTripAllSizes) {
  Rng rng(4);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  for (std::size_t size = 0; size <= 48; ++size) {
    const Bytes plain = rng.next_bytes(size);
    const Bytes ct = aes_cbc_encrypt(aes, iv, plain);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), plain.size());  // padding always added
    EXPECT_EQ(aes_cbc_decrypt(aes, iv, ct), plain);
  }
}

TEST(CbcMode, DecryptDetectsCiphertextTampering) {
  Rng rng(5);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  Bytes ct = aes_cbc_encrypt(aes, iv, rng.next_bytes(31));
  ct.back() ^= 0x01;  // corrupt padding block
  EXPECT_THROW(aes_cbc_decrypt(aes, iv, ct), CryptoError);
}

TEST(CbcMode, DecryptRejectsUnalignedCiphertext) {
  Rng rng(6);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  EXPECT_THROW(aes_cbc_decrypt(aes, iv, rng.next_bytes(17)), CryptoError);
  EXPECT_THROW(aes_cbc_decrypt(aes, iv, Bytes{}), CryptoError);
}

TEST(CbcMode, NopadRequiresAlignment) {
  Rng rng(7);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  EXPECT_THROW(aes_cbc_encrypt_nopad(aes, iv, rng.next_bytes(15)), std::invalid_argument);
  const Bytes plain = rng.next_bytes(32);
  EXPECT_EQ(aes_cbc_decrypt_nopad(aes, iv, aes_cbc_encrypt_nopad(aes, iv, plain)), plain);
}

TEST(CbcMode, IvChangesCiphertext) {
  Rng rng(8);
  const Aes aes(rng.next_bytes(16));
  const Bytes plain = rng.next_bytes(32);
  const Bytes c1 = aes_cbc_encrypt(aes, rng.next_bytes(16), plain);
  const Bytes c2 = aes_cbc_encrypt(aes, rng.next_bytes(16), plain);
  EXPECT_NE(c1, c2);
}

TEST(CbcMode, RejectsBadIvSize) {
  Rng rng(9);
  const Aes aes(rng.next_bytes(16));
  EXPECT_THROW(aes_cbc_encrypt(aes, rng.next_bytes(8), rng.next_bytes(16)),
               std::invalid_argument);
}

// --- CTR ------------------------------------------------------------------

TEST(CtrMode, Sp800_38aCtrAes128) {
  // SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
  const Aes aes(hex_decode("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes iv = hex_decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes plain = hex_decode("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(hex_encode(aes_ctr_crypt(aes, iv, plain)), "874d6191b620e3261bef6864990db6ce");
}

TEST(CtrMode, EncryptIsDecrypt) {
  Rng rng(10);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  for (const std::size_t size : {0, 1, 15, 16, 17, 100, 1000}) {
    const Bytes plain = rng.next_bytes(static_cast<std::size_t>(size));
    EXPECT_EQ(aes_ctr_crypt(aes, iv, aes_ctr_crypt(aes, iv, plain)), plain);
  }
}

TEST(CtrMode, StreamMatchesOneShot) {
  Rng rng(11);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  const Bytes plain = rng.next_bytes(100);

  const Bytes oneshot = aes_ctr_crypt(aes, iv, plain);

  AesCtrStream stream(aes, iv);
  Bytes chunked;
  std::size_t pos = 0;
  for (const std::size_t chunk : {7, 16, 3, 40, 34}) {
    const Bytes part = stream.process(BytesView(plain.data() + pos, chunk));
    chunked.insert(chunked.end(), part.begin(), part.end());
    pos += chunk;
  }
  EXPECT_EQ(chunked, oneshot);
}

TEST(CtrMode, StreamSkipAdvancesKeystream) {
  Rng rng(12);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  const Bytes plain = rng.next_bytes(64);
  const Bytes full = aes_ctr_crypt(aes, iv, plain);

  AesCtrStream stream(aes, iv);
  stream.skip(20);
  const Bytes tail = stream.process(BytesView(plain.data() + 20, 44));
  EXPECT_EQ(tail, Bytes(full.begin() + 20, full.end()));
}

TEST(CtrMode, CounterCarriesAcrossBlocks) {
  // A low counter byte of 0xff must carry into the next byte.
  Rng rng(13);
  const Aes aes(rng.next_bytes(16));
  Bytes iv(16, 0x00);
  iv[15] = 0xff;
  const Bytes plain(48, 0x00);
  const Bytes ks = aes_ctr_crypt(aes, iv, plain);
  // Distinct keystream blocks prove the counter moved.
  EXPECT_NE(Bytes(ks.begin(), ks.begin() + 16), Bytes(ks.begin() + 16, ks.begin() + 32));
  EXPECT_NE(Bytes(ks.begin() + 16, ks.begin() + 32), Bytes(ks.begin() + 32, ks.end()));
}

// --- Batched block path ---------------------------------------------------

TEST(AesBlocks, MultiBlockMatchesSingleBlock) {
  Rng rng(14);
  for (const std::size_t key_len : {std::size_t{16}, std::size_t{32}}) {
    const Aes aes(rng.next_bytes(key_len));
    // Odd batch sizes exercise both the wide pipeline and its scalar tail.
    for (const std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                                    std::size_t{4}, std::size_t{5}, std::size_t{7},
                                    std::size_t{8}, std::size_t{13}, std::size_t{64}}) {
      const Bytes in = rng.next_bytes(count * 16);
      Bytes batched(count * 16);
      aes.encrypt_blocks(in.data(), batched.data(), count);
      Bytes single(count * 16);
      for (std::size_t i = 0; i < count; ++i) {
        aes.encrypt_block(in.data() + i * 16, single.data() + i * 16);
      }
      EXPECT_EQ(batched, single) << "key=" << key_len << " count=" << count;
    }
  }
}

TEST(AesBlocks, EncryptBlocksAllowsExactAliasing) {
  Rng rng(15);
  const Aes aes(rng.next_bytes(16));
  const Bytes in = rng.next_bytes(5 * 16);
  Bytes expected(5 * 16);
  aes.encrypt_blocks(in.data(), expected.data(), 5);
  Bytes aliased = in;
  aes.encrypt_blocks(aliased.data(), aliased.data(), 5);
  EXPECT_EQ(aliased, expected);
}

TEST(AesBlocks, PortableEngineMatchesAutoDispatch) {
  // When AES-NI is present this pits the hardware path against the T-table
  // path; without it both legs run portable and the test is a tautology.
  Rng rng(16);
  const Aes aes(rng.next_bytes(32));
  const Bytes in = rng.next_bytes(33 * 16);
  Bytes auto_out(in.size());
  set_aes_engine(AesEngine::Auto);
  aes.encrypt_blocks(in.data(), auto_out.data(), 33);
  Bytes portable_out(in.size());
  set_aes_engine(AesEngine::Portable);
  aes.encrypt_blocks(in.data(), portable_out.data(), 33);
  set_aes_engine(AesEngine::Auto);
  EXPECT_EQ(portable_out, auto_out);
}

// --- CTR fast path --------------------------------------------------------

TEST(CtrMode, InPlaceMatchesCopying) {
  Rng rng(17);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  // Lengths straddle the batch boundaries: sub-block, exact blocks, odd
  // tails, and several keystream batches' worth.
  for (const std::size_t size : {0, 1, 15, 16, 17, 100, 1023, 1024, 1025, 5000}) {
    const Bytes plain = rng.next_bytes(static_cast<std::size_t>(size));
    const Bytes expected = aes_ctr_crypt(aes, iv, plain);
    Bytes in_place = plain;
    aes_ctr_crypt_in_place(aes, iv, in_place);
    EXPECT_EQ(in_place, expected) << "size=" << size;
  }
}

TEST(CtrMode, XorInPlaceMatchesProcessAcrossChunkings) {
  Rng rng(18);
  const Aes aes(rng.next_bytes(32));
  const Bytes iv = rng.next_bytes(16);
  const Bytes plain = rng.next_bytes(4000);
  const Bytes expected = aes_ctr_crypt(aes, iv, plain);

  // Random chunk splits hit every head/batched-middle/tail combination in
  // xor_in_place, including chunks entirely inside a partial keystream block.
  for (int trial = 0; trial < 10; ++trial) {
    AesCtrStream stream(aes, iv);
    Bytes out = plain;
    std::size_t pos = 0;
    while (pos < out.size()) {
      const std::size_t chunk =
          std::min(out.size() - pos, static_cast<std::size_t>(rng.next_below(700) + 1));
      stream.xor_in_place(out.data() + pos, chunk);
      pos += chunk;
    }
    EXPECT_EQ(out, expected) << "trial=" << trial;
  }
}

TEST(CtrMode, SkipMatchesDiscardedProcess) {
  Rng rng(19);
  const Aes aes(rng.next_bytes(16));
  const Bytes iv = rng.next_bytes(16);
  const Bytes plain = rng.next_bytes(600);
  const Bytes full = aes_ctr_crypt(aes, iv, plain);

  for (const std::size_t skip : {1, 15, 16, 17, 64, 100, 511}) {
    AesCtrStream stream(aes, iv);
    stream.skip(skip);
    Bytes tail(plain.begin() + static_cast<std::ptrdiff_t>(skip), plain.end());
    stream.xor_in_place(tail.data(), tail.size());
    EXPECT_EQ(tail, Bytes(full.begin() + static_cast<std::ptrdiff_t>(skip), full.end()))
        << "skip=" << skip;
  }
}

TEST(CtrMode, CounterWrapAt32Bits) {
  // Start the low 32 counter bits at 0xffffffff so the very first block
  // increment carries into byte 11 — the batched counter precompute must
  // propagate that carry exactly like the one-at-a-time seed path did.
  Rng rng(20);
  const Aes aes(rng.next_bytes(16));
  Bytes iv = rng.next_bytes(16);
  iv[12] = iv[13] = iv[14] = iv[15] = 0xff;
  const Bytes plain = rng.next_bytes(20 * 16);

  Bytes expected(plain.size());
  {
    // Reference: single-block CTR with explicit big-endian low-64 increment.
    AesBlock counter{};
    std::copy(iv.begin(), iv.end(), counter.begin());
    for (std::size_t block = 0; block * 16 < plain.size(); ++block) {
      const AesBlock ks = aes.encrypt_block(counter);
      for (std::size_t i = 0; i < 16; ++i) {
        expected[block * 16 + i] = static_cast<std::uint8_t>(plain[block * 16 + i] ^ ks[i]);
      }
      for (int i = 15; i >= 8; --i) {
        if (++counter[static_cast<std::size_t>(i)] != 0) break;
      }
    }
  }
  EXPECT_EQ(aes_ctr_crypt(aes, iv, plain), expected);
  Bytes in_place = plain;
  aes_ctr_crypt_in_place(aes, iv, in_place);
  EXPECT_EQ(in_place, expected);
}

}  // namespace
}  // namespace wideleak::crypto
