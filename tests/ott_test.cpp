// OTT layer tests: the study catalog, backend endpoints, custom DRM and the
// full playback client across devices and all ten apps.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "crypto/modes.hpp"
#include "ott/catalog.hpp"
#include "ott/custom_drm.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"
#include "support/errors.hpp"

namespace wideleak::ott {
namespace {

// Building the ecosystem costs RSA key generations; share one per binary.
class OttTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new StreamingEcosystem();
    ecosystem_->install_catalog();
  }

  static StreamingEcosystem& eco() { return *ecosystem_; }

  static StreamingEcosystem* ecosystem_;
};

StreamingEcosystem* OttTest::ecosystem_ = nullptr;

// --- catalog ---------------------------------------------------------------

TEST(Catalog, HasTheTenStudyApps) {
  const auto apps = study_catalog();
  ASSERT_EQ(apps.size(), 10u);
  EXPECT_EQ(apps[0].name, "Netflix");
  EXPECT_EQ(apps[0].installs_millions, 1000u);
  EXPECT_EQ(apps[9].name, "Salto");
}

TEST(Catalog, PolicyKnobsMatchTheMeasuredBehaviours) {
  EXPECT_TRUE(find_app("Netflix")->secure_uri_channel);
  EXPECT_FALSE(find_app("Netflix")->content_policy.encrypt_audio);
  EXPECT_TRUE(find_app("Disney+")->enforce_revocation);
  EXPECT_TRUE(find_app("Amazon Prime Video")->custom_drm_on_l3_only);
  EXPECT_EQ(find_app("Amazon Prime Video")->content_policy.key_usage,
            media::KeyUsagePolicy::Recommended);
  EXPECT_TRUE(find_app("Hulu")->subtitles_via_opaque_channel);
  EXPECT_TRUE(find_app("Hulu")->restrict_audit_region);
  EXPECT_TRUE(find_app("Starz")->enforce_revocation);
  EXPECT_FALSE(find_app("Showtime")->enforce_revocation);
  EXPECT_FALSE(find_app("myCANAL")->content_policy.encrypt_audio);
  EXPECT_FALSE(find_app("nope").has_value());
}

TEST(Catalog, HostnamesAreStableAndDistinct) {
  std::set<std::string> hosts;
  for (const auto& app : study_catalog()) {
    hosts.insert(app.backend_host());
    hosts.insert(app.cdn_host());
  }
  EXPECT_EQ(hosts.size(), 20u);
  EXPECT_EQ(find_app("Netflix")->backend_host(), "api.netflix.example");
  EXPECT_EQ(find_app("HBO Max")->cdn_host(), "cdn.hbomax.example");
}

// --- custom DRM --------------------------------------------------------------

TEST(CustomDrmTest, KeyMapRoundTrip) {
  Rng rng(1);
  std::map<std::string, Bytes> keys;
  keys["aa"] = rng.next_bytes(16);
  keys["bb"] = rng.next_bytes(16);
  const Bytes nonce = rng.next_bytes(16);
  const Bytes wrapped = CustomDrm::wrap_key_map("Amazon Prime Video", nonce, keys);
  EXPECT_EQ(CustomDrm::unwrap_key_map("Amazon Prime Video", nonce, wrapped), keys);
}

TEST(CustomDrmTest, WrongAppOrNonceFails) {
  Rng rng(2);
  std::map<std::string, Bytes> keys{{"aa", rng.next_bytes(16)}};
  const Bytes nonce = rng.next_bytes(16);
  const Bytes wrapped = CustomDrm::wrap_key_map("Amazon Prime Video", nonce, keys);
  EXPECT_THROW(CustomDrm::unwrap_key_map("Netflix", nonce, wrapped), Error);
  EXPECT_THROW(CustomDrm::unwrap_key_map("Amazon Prime Video", rng.next_bytes(16), wrapped),
               Error);
}

TEST(CustomDrmTest, AppSecretsDiffer) {
  EXPECT_NE(CustomDrm::app_secret("Amazon Prime Video"), CustomDrm::app_secret("Netflix"));
  EXPECT_EQ(CustomDrm::app_secret("X"), CustomDrm::app_secret("X"));
}

// --- ecosystem wiring ----------------------------------------------------------

TEST_F(OttTest, HostsRegisteredForEveryApp) {
  for (const auto& app : study_catalog()) {
    EXPECT_TRUE(eco().network().has_host(app.backend_host())) << app.name;
    EXPECT_TRUE(eco().network().has_host(app.cdn_host())) << app.name;
  }
  EXPECT_FALSE(eco().network().has_host("unknown.example"));
}

TEST_F(OttTest, TitlesPackagedPerPolicy) {
  const auto& netflix = eco().title_for("Netflix");
  // Clear audio -> only video keys.
  EXPECT_EQ(netflix.keys.size(), 6u);
  const auto& amazon = eco().title_for("Amazon Prime Video");
  EXPECT_EQ(amazon.keys.size(), 8u);  // distinct audio keys
  EXPECT_THROW(eco().title_for("absent"), StateError);
}

// --- backend endpoints -----------------------------------------------------------

class BackendClient {
 public:
  explicit BackendClient(StreamingEcosystem& eco)
      : eco_(eco), client_(make_client(eco)) {}

  net::HttpResponse call(const std::string& host, const std::string& method,
                         const std::string& path, Bytes body = {},
                         const std::string& auth = "") {
    net::HttpRequest req;
    req.method = method;
    req.path = path;
    req.body = std::move(body);
    if (!auth.empty()) req.headers["authorization"] = auth;
    const auto result = client_.request(host, req);
    EXPECT_EQ(result.handshake, net::HandshakeResult::Ok);
    return *result.response;
  }

 private:
  static net::TlsClient make_client(StreamingEcosystem& eco) {
    net::TrustStore trust;
    trust.add(eco.root_ca());
    return net::TlsClient(eco.network(), trust, eco.fork_rng());
  }

  StreamingEcosystem& eco_;
  net::TlsClient client_;
};

TEST_F(OttTest, LoginIssuesToken) {
  BackendClient client(eco());
  const auto res = client.call("api.showtime.example", "POST", "/login", to_bytes("u:p"));
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(to_string(BytesView(res.body)), eco().backend_for("Showtime").subscriber_token());
  EXPECT_EQ(client.call("api.showtime.example", "POST", "/login").status, 400);
}

TEST_F(OttTest, ManifestRequiresSubscription) {
  BackendClient client(eco());
  EXPECT_EQ(client.call("api.showtime.example", "GET", "/manifest").status, 401);
  const auto ok = client.call("api.showtime.example", "GET", "/manifest", {},
                              eco().backend_for("Showtime").subscriber_token());
  EXPECT_TRUE(ok.ok());
  const media::Mpd mpd = media::Mpd::parse(to_string(BytesView(ok.body)));
  EXPECT_FALSE(mpd.representations.empty());
}

TEST_F(OttTest, NetflixManifestIsEnvelope) {
  BackendClient client(eco());
  const auto res = client.call("api.netflix.example", "GET", "/manifest", {},
                               eco().backend_for("Netflix").subscriber_token());
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.headers.at("content-type"), "application/x-secure-manifest");
  // The body is ciphertext, not an MPD.
  EXPECT_THROW(media::Mpd::parse(to_string(BytesView(res.body))), Error);
  const auto envelope = SecureManifestEnvelope::deserialize(res.body);
  EXPECT_EQ(envelope.kid, eco().backend_for("Netflix").uri_channel_kid());
}

TEST_F(OttTest, HuluManifestHidesSubtitlesAndAudioKids) {
  BackendClient client(eco());
  const auto res = client.call("api.hulu.example", "GET", "/manifest", {},
                               eco().backend_for("Hulu").subscriber_token());
  ASSERT_TRUE(res.ok());
  const media::Mpd mpd = media::Mpd::parse(to_string(BytesView(res.body)));
  EXPECT_TRUE(mpd.of_type(media::TrackType::Subtitle).empty());
  for (const auto* rep : mpd.of_type(media::TrackType::Audio)) {
    EXPECT_FALSE(rep->default_kid.has_value());
  }
  EXPECT_FALSE(res.headers.at("x-subtitle-tokens").empty());
}

TEST_F(OttTest, OpaqueSubtitleChannelServesFiles) {
  BackendClient client(eco());
  const std::string token_header =
      client
          .call("api.starz.example", "GET", "/manifest", {},
                eco().backend_for("Starz").subscriber_token())
          .headers.at("x-subtitle-tokens");
  const std::string first_token = token_header.substr(0, token_header.find(','));
  const auto res = client.call("api.starz.example", "GET", "/st/" + first_token, {},
                               eco().backend_for("Starz").subscriber_token());
  ASSERT_TRUE(res.ok());
  const auto track = media::PackagedTrack::from_file(BytesView(res.body));
  EXPECT_EQ(track.track.type, media::TrackType::Subtitle);
  EXPECT_EQ(client
                .call("api.starz.example", "GET", "/st/ffffffffffffffffffffffff", {},
                      eco().backend_for("Starz").subscriber_token())
                .status,
            404);
}

TEST_F(OttTest, CdnServesTitleFilesWithoutAuth) {
  BackendClient client(eco());
  const auto& title = eco().title_for("OCS");
  const auto& path = title.mpd.representations.front().base_url;
  const auto res = client.call("cdn.ocs.example", "GET", path);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.body, title.files.at(path));
  EXPECT_EQ(client.call("cdn.ocs.example", "GET", "/nope").status, 404);
}

TEST_F(OttTest, AmazonLicenseEndpointRefusesL3) {
  BackendClient client(eco());
  auto device = eco().make_device(android::modern_l3_only_spec(0xAB1));
  android::MediaDrm drm(*device, android::kWidevineUuid);
  const auto session = drm.open_session();
  media::PsshBox pssh;
  pssh.key_ids.push_back(eco().title_for("Amazon Prime Video").keys[0].kid);
  const Bytes request = drm.get_key_request(session, pssh.to_box().serialize());
  const auto res =
      client.call("api.amazonprimevideo.example", "POST", "/license", request,
                  eco().backend_for("Amazon Prime Video").subscriber_token());
  ASSERT_TRUE(res.ok());
  const auto response = widevine::LicenseResponse::deserialize(res.body);
  EXPECT_FALSE(response.granted);
  EXPECT_NE(response.deny_reason.find("embedded DRM"), std::string::npos);
}

TEST_F(OttTest, CustomLicenseOnlyShipsSubHdKeys) {
  BackendClient client(eco());
  Rng rng = eco().fork_rng();
  const Bytes nonce = rng.next_bytes(16);
  const auto res =
      client.call("api.amazonprimevideo.example", "POST", "/custom_license", nonce,
                  eco().backend_for("Amazon Prime Video").subscriber_token());
  ASSERT_TRUE(res.ok());
  const auto keys = CustomDrm::unwrap_key_map("Amazon Prime Video", nonce, res.body);
  const auto& title = eco().title_for("Amazon Prime Video");
  for (const auto& key : title.keys) {
    const bool included = keys.contains(hex_encode(key.kid));
    EXPECT_EQ(included, !key.resolution.is_hd()) << key.resolution.label();
  }
}

TEST_F(OttTest, NonAmazonAppsHaveNoCustomLicense) {
  BackendClient client(eco());
  EXPECT_EQ(client
                .call("api.netflix.example", "POST", "/custom_license", to_bytes("n"),
                      eco().backend_for("Netflix").subscriber_token())
                .status,
            404);
}

// --- playback: all ten apps on a modern L1 device --------------------------------

class PlaybackAllApps : public OttTest,
                        public ::testing::WithParamInterface<int> {};

INSTANTIATE_TEST_SUITE_P(
    StudyCatalog, PlaybackAllApps, ::testing::Range(0, 10), [](const auto& info) {
      std::string name = study_catalog()[static_cast<std::size_t>(info.param)].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_P(PlaybackAllApps, PlaysInHdOnModernL1Device) {
  const OttAppProfile profile = study_catalog()[static_cast<std::size_t>(GetParam())];
  auto device = eco().make_device(android::modern_l1_spec(0xD000 + GetParam()));
  OttApp app(profile, eco(), *device);
  const PlaybackOutcome outcome = app.play_title();
  EXPECT_TRUE(outcome.played) << outcome.failure << " / " << outcome.license_error << " / "
                              << outcome.provisioning_error;
  EXPECT_TRUE(outcome.widevine_used);
  EXPECT_FALSE(outcome.used_custom_drm);
  // L1 devices get the full ladder.
  EXPECT_EQ(outcome.video_resolution, (media::Resolution{1920, 1080}));
  EXPECT_GT(outcome.frames_rendered, 0u);
}

// --- playback: targeted scenarios ---------------------------------------------------

TEST_F(OttTest, LegacyDevicePlaysAtQhdCap) {
  auto device = eco().make_device(android::legacy_nexus5_spec(0xE001));
  OttApp app(*find_app("Showtime"), eco(), *device);
  const PlaybackOutcome outcome = app.play_title();
  ASSERT_TRUE(outcome.played) << outcome.failure;
  EXPECT_EQ(outcome.video_resolution, (media::Resolution{960, 540}));
}

TEST_F(OttTest, RevocationEnforcingAppFailsProvisioningOnLegacy) {
  auto device = eco().make_device(android::legacy_nexus5_spec(0xE002));
  OttApp app(*find_app("Disney+"), eco(), *device);
  const PlaybackOutcome outcome = app.play_title();
  EXPECT_FALSE(outcome.played);
  EXPECT_TRUE(outcome.provisioning_attempted);
  EXPECT_FALSE(outcome.provisioning_ok);
  EXPECT_NE(outcome.provisioning_error.find("revoked"), std::string::npos);
}

TEST_F(OttTest, AmazonFallsBackToCustomDrmOnL3) {
  auto device = eco().make_device(android::modern_l3_only_spec(0xE003));
  OttApp app(*find_app("Amazon Prime Video"), eco(), *device);
  const PlaybackOutcome outcome = app.play_title();
  ASSERT_TRUE(outcome.played) << outcome.failure;
  EXPECT_TRUE(outcome.used_custom_drm);
  EXPECT_FALSE(outcome.widevine_used);
  EXPECT_EQ(outcome.video_resolution, (media::Resolution{960, 540}));
}

TEST_F(OttTest, AmazonUsesWidevineOnL1) {
  auto device = eco().make_device(android::modern_l1_spec(0xE004));
  OttApp app(*find_app("Amazon Prime Video"), eco(), *device);
  const PlaybackOutcome outcome = app.play_title();
  ASSERT_TRUE(outcome.played) << outcome.failure;
  EXPECT_FALSE(outcome.used_custom_drm);
  EXPECT_TRUE(outcome.widevine_used);
}

TEST_F(OttTest, RequestedQualityIsHonoured) {
  auto device = eco().make_device(android::modern_l1_spec(0xE005));
  OttApp app(*find_app("OCS"), eco(), *device);
  PlaybackRequest request;
  request.video_height = 480;
  const PlaybackOutcome outcome = app.play_title(request);
  ASSERT_TRUE(outcome.played) << outcome.failure;
  EXPECT_EQ(outcome.video_resolution, (media::Resolution{854, 480}));
}

TEST_F(OttTest, PinningBlocksAnUntrustedProxySilently) {
  // Without the repinning bypass, routing the app through a MITM kills the
  // exchange (certificate chain fails: proxy CA not user-installed).
  auto device = eco().make_device(android::modern_l1_spec(0xE006));
  OttApp app(*find_app("Salto"), eco(), *device);
  net::MitmProxy proxy(eco().network(), eco().fork_rng());
  app.tls().set_proxy(&proxy);
  const PlaybackOutcome outcome = app.play_title();
  EXPECT_FALSE(outcome.played);
  EXPECT_TRUE(proxy.flows().empty());
}

}  // namespace
}  // namespace wideleak::ott
