// Unit tests for the support layer: byte utilities, CRC-32, deterministic
// RNG, big-endian serialization and logging.
#include <gtest/gtest.h>

#include <stdexcept>

#include <algorithm>
#include <span>
#include <vector>

#include "support/arena.hpp"
#include "support/bench_report.hpp"
#include "support/byte_io.hpp"
#include "support/bytes.hpp"
#include "support/crc32.hpp"
#include "support/errors.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"

namespace wideleak {
namespace {

// --- bytes -------------------------------------------------------------

TEST(Bytes, HexEncodeKnownValues) {
  EXPECT_EQ(hex_encode(Bytes{}), "");
  EXPECT_EQ(hex_encode(Bytes{0x00}), "00");
  EXPECT_EQ(hex_encode(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(hex_encode(Bytes{0x0f, 0xf0}), "0ff0");
}

TEST(Bytes, HexDecodeKnownValues) {
  EXPECT_EQ(hex_decode(""), Bytes{});
  EXPECT_EQ(hex_decode("deadbeef"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(hex_decode("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(Bytes, HexDecodeRejectsNonHex) {
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
  EXPECT_THROW(hex_decode("0g"), std::invalid_argument);
}

TEST(Bytes, HexRoundTripRandom) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Bytes data = rng.next_bytes(rng.next_below(200));
    EXPECT_EQ(hex_decode(hex_encode(data)), data);
  }
}

TEST(Bytes, Base64KnownVectors) {
  // RFC 4648 test vectors.
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Bytes, Base64DecodeKnownVectors) {
  EXPECT_EQ(to_string(BytesView(base64_decode("Zm9vYmFy"))), "foobar");
  EXPECT_EQ(to_string(BytesView(base64_decode("Zg=="))), "f");
}

TEST(Bytes, Base64RoundTripRandom) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const Bytes data = rng.next_bytes(rng.next_below(300));
    EXPECT_EQ(base64_decode(base64_encode(data)), data);
  }
}

TEST(Bytes, Base64RejectsMalformed) {
  EXPECT_THROW(base64_decode("abc"), std::invalid_argument);    // bad length
  EXPECT_THROW(base64_decode("a=bc"), std::invalid_argument);   // misplaced pad
  EXPECT_THROW(base64_decode("ab!?"), std::invalid_argument);   // bad alphabet
}

TEST(Bytes, XorBytes) {
  const Bytes a{0xff, 0x00, 0xaa};
  const Bytes b{0x0f, 0xf0, 0xaa};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0xf0, 0x00}));
}

TEST(Bytes, XorBytesRejectsLengthMismatch) {
  EXPECT_THROW(xor_bytes(Bytes{1}, Bytes{1, 2}), std::invalid_argument);
}

TEST(Bytes, XorIsSelfInverse) {
  Rng rng(9);
  const Bytes a = rng.next_bytes(64);
  const Bytes mask = rng.next_bytes(64);
  EXPECT_EQ(xor_bytes(xor_bytes(a, mask), mask), a);
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(constant_time_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(constant_time_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(constant_time_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, Concat) {
  const Bytes a{1, 2};
  const Bytes b{3};
  const Bytes c{};
  EXPECT_EQ(concat({BytesView(a), BytesView(b), BytesView(c)}), (Bytes{1, 2, 3}));
}

TEST(Bytes, PrintableAscii) {
  EXPECT_TRUE(is_printable_ascii(to_bytes("Hello, world!\nLine two.\t")));
  EXPECT_FALSE(is_printable_ascii(Bytes{0x00}));
  EXPECT_FALSE(is_printable_ascii(Bytes{0x80}));
  EXPECT_TRUE(is_printable_ascii(Bytes{}));
}

// --- crc32 -------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // The canonical check value.
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32(BytesView()), 0x00000000u);
  EXPECT_EQ(crc32(to_bytes("a")), 0xe8b7be43u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  Rng rng(10);
  Bytes data = rng.next_bytes(128);
  const std::uint32_t original = crc32(data);
  for (int bit = 0; bit < 16; ++bit) {
    data[static_cast<std::size_t>(bit) * 7 % data.size()] ^= 1;
    EXPECT_NE(crc32(data), original);
    data[static_cast<std::size_t>(bit) * 7 % data.size()] ^= 1;
  }
}

TEST(Crc32, SliceBy8MatchesBitwiseReference) {
  // The production implementation folds 8 bytes per iteration; this is the
  // textbook bit-at-a-time CRC-32 it must agree with, at every length that
  // straddles the 8-byte fold boundary.
  const auto bitwise = [](BytesView data) {
    std::uint32_t c = 0xffffffffu;
    for (const std::uint8_t byte : data) {
      c ^= byte;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    return c ^ 0xffffffffu;
  };
  Rng rng(11);
  for (std::size_t size = 0; size <= 40; ++size) {
    const Bytes data = rng.next_bytes(size);
    EXPECT_EQ(crc32(data), bitwise(data)) << "size=" << size;
  }
  const Bytes big = rng.next_bytes(10000);
  EXPECT_EQ(crc32(big), bitwise(big));
}

// --- scratch arena -----------------------------------------------------

TEST(ScratchArena, AllocationsAreStableAcrossGrowth) {
  support::ScratchArena arena;
  // Force several chunk allocations; earlier spans must stay valid because
  // chunks are never resized, only added.
  std::vector<std::span<std::uint8_t>> spans;
  for (std::size_t i = 0; i < 50; ++i) {
    auto span = arena.alloc(1000);
    std::fill(span.begin(), span.end(), static_cast<std::uint8_t>(i));
    spans.push_back(span);
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (const std::uint8_t byte : spans[i]) {
      ASSERT_EQ(byte, static_cast<std::uint8_t>(i));
    }
  }
  EXPECT_GE(arena.bytes_in_use(), 50u * 1000u);
}

TEST(ScratchArena, ResetRetainsCapacity) {
  support::ScratchArena arena;
  arena.alloc(4096);
  arena.alloc(100);
  const std::size_t cap = arena.capacity();
  EXPECT_GT(cap, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // reset() keeps the largest chunk so steady-state reuse stops allocating.
  EXPECT_GT(arena.capacity(), 0u);
  EXPECT_LE(arena.capacity(), cap);
  auto span = arena.alloc(64);
  EXPECT_EQ(span.size(), 64u);
}

TEST(ScratchArena, CopyDuplicatesBytes) {
  support::ScratchArena arena;
  const Bytes source = to_bytes("scratch-arena-copy");
  auto span = arena.copy(BytesView(source));
  ASSERT_EQ(span.size(), source.size());
  EXPECT_TRUE(std::equal(span.begin(), span.end(), source.begin()));
}

TEST(ScratchArena, ZeroByteAlloc) {
  support::ScratchArena arena;
  EXPECT_EQ(arena.alloc(0).size(), 0u);
}

// --- bench report ------------------------------------------------------

TEST(BenchReport, FixedJsonSchema) {
  support::BenchReport report("unit");
  report.add("op_a", 1000, 2000, 0xdeadbeefu);
  const std::string json = report.to_json();
  // The schema is load-bearing: tools/bench_diff.py parses exactly these keys.
  EXPECT_NE(json.find("\"name\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"op\": \"op_a\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"ns\": 2000"), std::string::npos);
  EXPECT_NE(json.find("\"mb_per_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"checksum\": \"deadbeef\""), std::string::npos);
}

TEST(BenchReport, ThroughputMath) {
  support::BenchReport report("unit");
  // 1e6 bytes in 1e6 ns = 1000 MB/s (decimal megabytes).
  report.add("op", 1000000, 1000000, 0u);
  EXPECT_NE(report.to_json().find("\"mb_per_s\": 1000.000"), std::string::npos);
}

TEST(BenchReport, ZeroNsDoesNotDivide) {
  support::BenchReport report("unit");
  report.add("op", 123, 0, 0u);
  EXPECT_NE(report.to_json().find("\"mb_per_s\": 0.000"), std::string::npos);
}

// --- rng ---------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(43);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 800; ++i) ++seen[rng.next_below(8)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, NextBytesLength) {
  Rng rng(44);
  EXPECT_EQ(rng.next_bytes(0).size(), 0u);
  EXPECT_EQ(rng.next_bytes(1).size(), 1u);
  EXPECT_EQ(rng.next_bytes(33).size(), 33u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(55);
  Rng child = parent.fork();
  // The fork consumed one draw; parent continues its own stream.
  const std::uint64_t p = parent.next_u64();
  const std::uint64_t c = child.next_u64();
  EXPECT_NE(p, c);
}

// --- byte_io -----------------------------------------------------------

TEST(ByteIo, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ull);
  ByteReader r(BytesView(w.data()));
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.done());
}

TEST(ByteIo, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(ByteIo, VarBytesRoundTrip) {
  ByteWriter w;
  w.var_bytes(Bytes{9, 8, 7});
  w.var_string("hello");
  w.var_bytes(Bytes{});
  ByteReader r(BytesView(w.data()));
  EXPECT_EQ(r.var_bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.var_string(), "hello");
  EXPECT_EQ(r.var_bytes(), Bytes{});
  EXPECT_TRUE(r.done());
}

TEST(ByteIo, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(BytesView(w.data()));
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(ByteIo, TruncatedVarBytesThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.raw(Bytes{1, 2, 3});
  ByteReader r(BytesView(w.data()));
  EXPECT_THROW(r.var_bytes(), ParseError);
}

TEST(ByteIo, RemainingAndPosition) {
  const Bytes data{1, 2, 3, 4};
  ByteReader r{BytesView(data)};
  EXPECT_EQ(r.remaining(), 4u);
  r.u16();
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_EQ(r.position(), 2u);
}

// --- log ---------------------------------------------------------------

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // No crash emitting below/at level.
  WL_LOG(Debug) << "suppressed";
  WL_LOG(Error) << "emitted";
  set_log_level(before);
}

}  // namespace
}  // namespace wideleak
