// Failure-injection and deserializer-fuzz tests: every wire format in the
// project must reject garbage, truncations and bit flips with a clean
// ParseError/denial — never a crash — because the attack tooling feeds
// intercepted (i.e. untrusted) bytes straight into these parsers.
#include <gtest/gtest.h>

#include "media/cenc.hpp"
#include "media/mpd.hpp"
#include "net/http.hpp"
#include "net/tls.hpp"
#include "ott/backend.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "widevine/keybox.hpp"
#include "widevine/protocol.hpp"

namespace wideleak {
namespace {

// Feed `parse` random blobs; success or ParseError are fine, anything else
// (crash, other exception types escaping) fails the test.
template <typename Fn>
void fuzz_random_blobs(Rng& rng, Fn parse, int rounds = 200) {
  for (int i = 0; i < rounds; ++i) {
    const Bytes blob = rng.next_bytes(rng.next_below(300));
    try {
      parse(BytesView(blob));
    } catch (const ParseError&) {
      // expected for nearly all inputs
    } catch (const Error&) {
      // domain-level rejection is also acceptable
    }
  }
}

// Feed `parse` every truncation and 64 random single-byte corruptions of a
// valid message.
template <typename Fn>
void fuzz_mutations(Rng& rng, const Bytes& valid, Fn parse) {
  for (std::size_t cut = 0; cut < valid.size(); cut += 1 + valid.size() / 64) {
    try {
      parse(BytesView(valid.data(), cut));
    } catch (const Error&) {
    }
  }
  for (int i = 0; i < 64; ++i) {
    Bytes mutated = valid;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      parse(BytesView(mutated));
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, HttpMessages) {
  Rng rng(1);
  fuzz_random_blobs(rng, [](BytesView b) { return net::HttpRequest::deserialize(b); });
  fuzz_random_blobs(rng, [](BytesView b) { return net::HttpResponse::deserialize(b); });
  net::HttpRequest req;
  req.method = "POST";
  req.path = "/license";
  req.headers["a"] = "b";
  req.body = rng.next_bytes(50);
  fuzz_mutations(rng, req.serialize(),
                 [](BytesView b) { return net::HttpRequest::deserialize(b); });
}

TEST(Fuzz, Certificates) {
  Rng rng(2);
  fuzz_random_blobs(rng, [](BytesView b) { return net::Certificate::deserialize(b); });
}

TEST(Fuzz, WidevineProtocolMessages) {
  Rng rng(3);
  fuzz_random_blobs(rng, [](BytesView b) { return widevine::ProvisioningRequest::deserialize(b); });
  fuzz_random_blobs(rng, [](BytesView b) { return widevine::ProvisioningResponse::deserialize(b); });
  fuzz_random_blobs(rng, [](BytesView b) { return widevine::LicenseRequest::deserialize(b); });
  fuzz_random_blobs(rng, [](BytesView b) { return widevine::LicenseResponse::deserialize(b); });
  fuzz_random_blobs(rng, [](BytesView b) { return widevine::KeyContainer::deserialize(b); });

  widevine::LicenseRequest request;
  request.client.stable_id = rng.next_bytes(32);
  request.nonce = rng.next_bytes(16);
  request.key_ids = {rng.next_bytes(16)};
  request.signature = rng.next_bytes(32);
  fuzz_mutations(rng, request.serialize(),
                 [](BytesView b) { return widevine::LicenseRequest::deserialize(b); });
}

TEST(Fuzz, MediaContainers) {
  Rng rng(4);
  fuzz_random_blobs(rng, [](BytesView b) { return media::Box::parse_sequence(b); });
  fuzz_random_blobs(rng, [](BytesView b) { return media::PackagedTrack::from_file(b); });

  const auto frames = media::generate_track_frames(7, media::TrackType::Video, {640, 360}, 4);
  media::TrakBox trak{.type = media::TrackType::Video, .resolution = {640, 360},
                      .language = "en"};
  const Bytes file =
      media::package_encrypted(trak, frames, rng.next_bytes(16), rng.next_bytes(16), rng)
          .to_file();
  fuzz_mutations(rng, file, [](BytesView b) { return media::PackagedTrack::from_file(b); });
}

TEST(Fuzz, MpdDocuments) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Bytes blob = rng.next_bytes(rng.next_below(200));
    try {
      media::Mpd::parse(to_string(BytesView(blob)));
    } catch (const Error&) {
    }
  }
  // Structured-but-wrong XML.
  for (const char* doc : {"<MPD>", "<MPD></MPD>", "<MPD><Period><AdaptationSet/></Period></MPD>",
                          "<MPD><Period><AdaptationSet contentType=\"weird\"/></Period></MPD>"}) {
    try {
      media::Mpd::parse(doc);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, SecureManifestEnvelope) {
  Rng rng(6);
  fuzz_random_blobs(rng, [](BytesView b) { return ott::SecureManifestEnvelope::deserialize(b); });
}

TEST(Fuzz, KeyboxParseNeverLies) {
  // Beyond random rejection: a blob that *does* parse must re-serialize to
  // exactly itself (parse is injective on its accepted set).
  Rng rng(7);
  const widevine::Keybox real = widevine::make_factory_keybox("fuzz-device", 1);
  const Bytes raw = real.serialize();
  const auto parsed = widevine::Keybox::parse(raw);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), raw);
}

}  // namespace
}  // namespace wideleak
