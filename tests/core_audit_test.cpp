// Auditor tests: asset protection classification (Q2), key-usage analysis
// (Q3) and the legacy-device prober (Q4).
#include <gtest/gtest.h>

#include "core/asset_auditor.hpp"
#include "core/key_usage_auditor.hpp"
#include "core/legacy_prober.hpp"
#include "core/monitor.hpp"
#include "core/network_monitor.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace wideleak::core {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new ott::StreamingEcosystem();
    ecosystem_->install_catalog();
  }

  static ott::StreamingEcosystem& eco() { return *ecosystem_; }

  static HarvestedManifest harvest(const std::string& app_name, std::uint64_t seed) {
    auto device = eco().make_device(android::modern_l1_spec(seed));
    DrmApiMonitor cdm_monitor(*device);
    NetworkMonitor net_monitor(eco().network(), eco().fork_rng());
    ott::OttApp app(*ott::find_app(app_name), eco(), *device);
    net_monitor.attach(app);
    EXPECT_TRUE(app.play_title().played) << app_name;
    return net_monitor.harvest_manifest(&cdm_monitor);
  }

  static AssetAuditor make_auditor() {
    net::TrustStore trust;
    trust.add(eco().root_ca());
    return AssetAuditor(eco().network(), trust, eco().fork_rng());
  }

  static ott::StreamingEcosystem* ecosystem_;
};

ott::StreamingEcosystem* AuditTest::ecosystem_ = nullptr;

// --- file classification unit tests ----------------------------------------

TEST(AssetClassification, ClearFileIsClear) {
  const auto frames = media::generate_track_frames(1, media::TrackType::Audio, {}, 4);
  media::TrakBox trak{.type = media::TrackType::Audio, .resolution = {}, .language = "en"};
  const Bytes file = media::package_clear(trak, frames).to_file();
  EXPECT_EQ(AssetAuditor::classify_file(BytesView(file)), ProtectionStatus::Clear);
}

TEST(AssetClassification, EncryptedFileIsEncrypted) {
  Rng rng(2);
  const auto frames = media::generate_track_frames(2, media::TrackType::Video, {640, 360}, 4);
  media::TrakBox trak{.type = media::TrackType::Video, .resolution = {640, 360},
                      .language = "und"};
  const Bytes file =
      media::package_encrypted(trak, frames, rng.next_bytes(16), rng.next_bytes(16), rng)
          .to_file();
  EXPECT_EQ(AssetAuditor::classify_file(BytesView(file)), ProtectionStatus::Encrypted);
}

TEST(AssetClassification, GarbageIsUnknown) {
  Rng rng(3);
  const Bytes garbage = rng.next_bytes(512);
  EXPECT_EQ(AssetAuditor::classify_file(BytesView(garbage)), ProtectionStatus::Unknown);
}

// --- Q2 over real apps ------------------------------------------------------

TEST_F(AuditTest, NetflixAudioAndSubtitlesClearVideoEncrypted) {
  AssetAuditor auditor = make_auditor();
  const auto report = auditor.audit(harvest("Netflix", 0x2201));
  EXPECT_EQ(report.video, ProtectionStatus::Encrypted);
  EXPECT_EQ(report.audio, ProtectionStatus::Clear);
  EXPECT_EQ(report.subtitles, ProtectionStatus::Clear);
  EXPECT_TRUE(report.subtitles_ascii_readable);
  EXPECT_TRUE(report.clear_audio_plays_without_account);
  EXPECT_GT(report.assets_checked, 0u);
}

TEST_F(AuditTest, ShowtimeEncryptsAudio) {
  AssetAuditor auditor = make_auditor();
  const auto report = auditor.audit(harvest("Showtime", 0x2202));
  EXPECT_EQ(report.video, ProtectionStatus::Encrypted);
  EXPECT_EQ(report.audio, ProtectionStatus::Encrypted);
  EXPECT_EQ(report.subtitles, ProtectionStatus::Clear);
  EXPECT_FALSE(report.clear_audio_plays_without_account);
}

TEST_F(AuditTest, HuluSubtitlesUnknown) {
  AssetAuditor auditor = make_auditor();
  const auto report = auditor.audit(harvest("Hulu", 0x2203));
  EXPECT_EQ(report.video, ProtectionStatus::Encrypted);
  EXPECT_EQ(report.audio, ProtectionStatus::Encrypted);
  EXPECT_EQ(report.subtitles, ProtectionStatus::Unknown);
}

TEST_F(AuditTest, EmptyManifestYieldsUnknownEverything) {
  AssetAuditor auditor = make_auditor();
  const auto report = auditor.audit(HarvestedManifest{});
  EXPECT_EQ(report.video, ProtectionStatus::Unknown);
  EXPECT_EQ(report.audio, ProtectionStatus::Unknown);
  EXPECT_EQ(report.subtitles, ProtectionStatus::Unknown);
  EXPECT_EQ(report.assets_checked, 0u);
}

// --- Q3 ------------------------------------------------------------------------

TEST_F(AuditTest, MinimumVerdictForClearAudio) {
  AssetAuditor auditor = make_auditor();
  const auto manifest = harvest("Salto", 0x2204);
  const auto assets = auditor.audit(manifest);
  const auto usage = audit_key_usage(manifest, assets);
  EXPECT_EQ(usage.verdict, KeyUsageVerdict::Minimum);
  EXPECT_FALSE(usage.audio_encrypted);
  EXPECT_TRUE(usage.video_keys_distinct_per_resolution);
}

TEST_F(AuditTest, MinimumVerdictForSharedAudioKey) {
  AssetAuditor auditor = make_auditor();
  const auto manifest = harvest("Showtime", 0x2205);
  const auto usage = audit_key_usage(manifest, auditor.audit(manifest));
  EXPECT_EQ(usage.verdict, KeyUsageVerdict::Minimum);
  EXPECT_TRUE(usage.audio_encrypted);
  EXPECT_TRUE(usage.audio_shares_video_key);
}

TEST_F(AuditTest, RecommendedVerdictForAmazon) {
  AssetAuditor auditor = make_auditor();
  const auto manifest = harvest("Amazon Prime Video", 0x2206);
  const auto usage = audit_key_usage(manifest, auditor.audit(manifest));
  EXPECT_EQ(usage.verdict, KeyUsageVerdict::Recommended);
  EXPECT_TRUE(usage.audio_encrypted);
  EXPECT_FALSE(usage.audio_shares_video_key);
}

TEST_F(AuditTest, UnknownVerdictUnderRegionalRestriction) {
  AssetAuditor auditor = make_auditor();
  const auto manifest = harvest("HBO Max", 0x2207);
  const auto usage = audit_key_usage(manifest, auditor.audit(manifest));
  EXPECT_EQ(usage.verdict, KeyUsageVerdict::Unknown);
  EXPECT_TRUE(usage.audio_encrypted);  // Q2 sees it; Q3 cannot analyze it
}

TEST_F(AuditTest, VideoKeysAlwaysDistinctPerResolution) {
  AssetAuditor auditor = make_auditor();
  for (const char* app : {"Netflix", "Showtime", "Amazon Prime Video"}) {
    const auto manifest = harvest(app, 0x2210 + static_cast<std::uint64_t>(app[0]));
    const auto usage = audit_key_usage(manifest, auditor.audit(manifest));
    EXPECT_TRUE(usage.video_keys_distinct_per_resolution) << app;
    EXPECT_EQ(usage.distinct_video_kids, 6u) << app;
  }
}

TEST(KeyUsageUnit, NoManifestIsUnknown) {
  EXPECT_EQ(audit_key_usage(HarvestedManifest{}, AssetProtectionReport{}).verdict,
            KeyUsageVerdict::Unknown);
}

// --- Q4 ---------------------------------------------------------------------------

TEST_F(AuditTest, LegacyProbeVerdicts) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x2301));

  const auto netflix = probe_legacy_playback(*ott::find_app("Netflix"), eco(), *nexus5);
  EXPECT_EQ(netflix.verdict, LegacyPlaybackVerdict::Plays);
  EXPECT_EQ(netflix.best_resolution, (media::Resolution{960, 540}));
  EXPECT_TRUE(netflix.hd_denied);

  const auto disney = probe_legacy_playback(*ott::find_app("Disney+"), eco(), *nexus5);
  EXPECT_EQ(disney.verdict, LegacyPlaybackVerdict::ProvisioningFailed);
  EXPECT_NE(disney.detail.find("revoked"), std::string::npos);

  const auto amazon =
      probe_legacy_playback(*ott::find_app("Amazon Prime Video"), eco(), *nexus5);
  EXPECT_EQ(amazon.verdict, LegacyPlaybackVerdict::PlaysViaCustomDrm);
  EXPECT_TRUE(amazon.hd_denied);

  const auto starz = probe_legacy_playback(*ott::find_app("Starz"), eco(), *nexus5);
  EXPECT_EQ(starz.verdict, LegacyPlaybackVerdict::ProvisioningFailed);
}

TEST_F(AuditTest, ModernDeviceNeverHitsProvisioningDenial) {
  auto pixel = eco().make_device(android::modern_l1_spec(0x2302));
  const auto disney = probe_legacy_playback(*ott::find_app("Disney+"), eco(), *pixel);
  EXPECT_EQ(disney.verdict, LegacyPlaybackVerdict::Plays);
  EXPECT_FALSE(disney.hd_denied);
}


// --- negative control: the pipeline must DETECT compliance, not assume
// non-compliance. A hypothetical app that encrypts everything (subtitles
// included, with distinct keys) audits as fully protected.

TEST_F(AuditTest, CompliantAppAuditsAsFullyProtected) {
  ott::OttAppProfile strict;
  strict.name = "StrictFlix";
  strict.installs_millions = 1;
  strict.content_policy = {.encrypt_video = true,
                           .encrypt_audio = true,
                           .encrypt_subtitles = true,
                           .key_usage = media::KeyUsagePolicy::Recommended};
  eco().install_app(strict);

  auto device = eco().make_device(android::modern_l1_spec(0x2401));
  DrmApiMonitor cdm_monitor(*device);
  NetworkMonitor net_monitor(eco().network(), eco().fork_rng());
  ott::OttApp app(strict, eco(), *device);
  net_monitor.attach(app);
  const auto outcome = app.play_title();
  ASSERT_TRUE(outcome.played) << outcome.failure << outcome.license_error;

  const auto manifest = net_monitor.harvest_manifest(&cdm_monitor);
  AssetAuditor auditor = make_auditor();
  const auto assets = auditor.audit(manifest);
  EXPECT_EQ(assets.video, ProtectionStatus::Encrypted);
  EXPECT_EQ(assets.audio, ProtectionStatus::Encrypted);
  EXPECT_EQ(assets.subtitles, ProtectionStatus::Encrypted);
  EXPECT_FALSE(assets.subtitles_ascii_readable);
  EXPECT_FALSE(assets.clear_audio_plays_without_account);
  const auto usage = audit_key_usage(manifest, assets);
  EXPECT_EQ(usage.verdict, KeyUsageVerdict::Recommended);
}

}  // namespace
}  // namespace wideleak::core
