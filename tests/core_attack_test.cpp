// Attack-side tests: keybox memory-scan recovery (CVE-2021-0639), the
// clean-room key-ladder reconstruction, and the end-to-end content ripper.
#include <gtest/gtest.h>

#include "core/key_ladder_attack.hpp"
#include "core/keybox_recovery.hpp"
#include "core/monitor.hpp"
#include "core/ripper.hpp"
#include "media/codec.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace wideleak::core {
namespace {

class AttackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new ott::StreamingEcosystem();
    ecosystem_->install_catalog();
  }

  static ott::StreamingEcosystem& eco() { return *ecosystem_; }
  static ott::StreamingEcosystem* ecosystem_;
};

ott::StreamingEcosystem* AttackTest::ecosystem_ = nullptr;

// --- keybox recovery ---------------------------------------------------------

TEST_F(AttackTest, RecoversKeyboxFromLegacyL3Device) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x3301));
  const KeyboxRecoveryResult result = recover_keybox(*nexus5);
  ASSERT_TRUE(result.success());
  // The recovered keybox is the real one: its stable id matches the device.
  EXPECT_EQ(result.keybox->stable_id(), nexus5->cdm().oemcrypto().stable_id());
  EXPECT_GE(result.magic_hits, 1u);
  EXPECT_GE(result.crc_validated, 1u);
  EXPECT_NE(result.source_region.find("keybox"), std::string::npos);
}

TEST_F(AttackTest, PatchedL3DeviceResistsTheScan) {
  auto tablet = eco().make_device(android::modern_l3_only_spec(0x3302));
  // Even after playback exercises the CDM...
  ott::OttApp app(*ott::find_app("Showtime"), eco(), *tablet);
  ASSERT_TRUE(app.play_title().played);
  const KeyboxRecoveryResult result = recover_keybox(*tablet);
  EXPECT_FALSE(result.success());
  EXPECT_GT(result.regions_scanned, 0u);  // there *is* memory; no raw keybox in it
}

TEST_F(AttackTest, L1DeviceResistsTheScan) {
  auto pixel = eco().make_device(android::modern_l1_spec(0x3303));
  ott::OttApp app(*ott::find_app("Showtime"), eco(), *pixel);
  ASSERT_TRUE(app.play_title().played);
  EXPECT_FALSE(recover_keybox(*pixel).success());
}

TEST(KeyboxScan, CrcFiltersDecoyMagics) {
  hooking::ProcessMemory memory;
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    Bytes junk = rng.next_bytes(1024);
    junk[200] = 'k';
    junk[201] = 'b';
    junk[202] = 'o';
    junk[203] = 'x';
    memory.map_region("junk" + std::to_string(i), junk);
  }
  const widevine::Keybox real = widevine::make_factory_keybox("scan-target", 5);
  memory.map_region("real", real.serialize());
  const KeyboxRecoveryResult result = scan_for_keybox(memory);
  ASSERT_TRUE(result.success());
  EXPECT_EQ(*result.keybox, real);
  EXPECT_EQ(result.crc_validated, 1u);
  EXPECT_EQ(result.magic_hits, 11u);
}

TEST(KeyboxScan, MagicNearRegionEdgeIsHandled) {
  hooking::ProcessMemory memory;
  // Magic with no room for a full keybox before/after it.
  memory.map_region("tiny", to_bytes("kbox"));
  Bytes almost(125, 0);
  almost[120] = 'k';
  almost[121] = 'b';
  almost[122] = 'o';
  almost[123] = 'x';
  memory.map_region("truncated", almost);
  const KeyboxRecoveryResult result = scan_for_keybox(memory);
  EXPECT_FALSE(result.success());
  EXPECT_EQ(result.magic_hits, 0u);  // neither candidate had a full window
}

TEST(KeyboxScan, EmptyMemory) {
  hooking::ProcessMemory memory;
  const KeyboxRecoveryResult result = scan_for_keybox(memory);
  EXPECT_FALSE(result.success());
  EXPECT_EQ(result.regions_scanned, 0u);
  EXPECT_EQ(result.bytes_scanned, 0u);
}

// --- key ladder reconstruction ---------------------------------------------------

class LadderAttackTest : public AttackTest {
 protected:
  // Drive one instrumented playback on a fresh legacy device and return
  // everything the attacker would hold.
  struct Capture {
    std::unique_ptr<android::Device> device;
    std::unique_ptr<DrmApiMonitor> monitor;
    widevine::Keybox keybox;
  };
  Capture capture_playback(const std::string& app_name, std::uint64_t seed) {
    Capture capture;
    capture.device = eco().make_device(android::legacy_nexus5_spec(seed));
    capture.monitor = std::make_unique<DrmApiMonitor>(*capture.device);
    ott::OttApp app(*ott::find_app(app_name), eco(), *capture.device);
    EXPECT_TRUE(app.play_title().played) << app_name;
    const auto scan = recover_keybox(*capture.device);
    EXPECT_TRUE(scan.success());
    capture.keybox = *scan.keybox;
    return capture;
  }
};

TEST_F(LadderAttackTest, RecoversDeviceRsaKeyFromProvisioningExchange) {
  Capture capture = capture_playback("Showtime", 0x3401);
  KeyLadderAttack ladder(capture.keybox);
  const auto rsa = ladder.recover_device_rsa_key(capture.monitor->trace());
  ASSERT_TRUE(rsa.has_value());
  // It is the very key the CDM holds.
  EXPECT_EQ(rsa->pub, *capture.device->cdm().oemcrypto().device_rsa_public());
}

TEST_F(LadderAttackTest, RecoversContentKeysViaRsaPath) {
  Capture capture = capture_playback("Showtime", 0x3402);
  KeyLadderAttack ladder(capture.keybox);
  ASSERT_TRUE(ladder.recover_device_rsa_key(capture.monitor->trace()).has_value());
  const RecoveredKeys keys = ladder.recover_content_keys(capture.monitor->trace());
  ASSERT_FALSE(keys.empty());

  // Every recovered key matches the license server's ground truth.
  const auto& title = eco().title_for("Showtime");
  for (const auto& [kid_hex, key] : keys) {
    const auto* expected = title.key_for(hex_decode(kid_hex));
    ASSERT_NE(expected, nullptr) << kid_hex;
    EXPECT_EQ(key, expected->key);
  }
  // And no HD key leaked: the server never sent them to L3.
  for (const auto& content_key : title.keys) {
    if (content_key.resolution.is_hd()) {
      EXPECT_FALSE(keys.contains(hex_encode(content_key.kid)));
    }
  }
}

TEST_F(LadderAttackTest, WrongKeyboxRecoversNothing) {
  Capture capture = capture_playback("Showtime", 0x3403);
  KeyLadderAttack ladder(widevine::make_factory_keybox("some-other-device", 1));
  EXPECT_FALSE(ladder.recover_device_rsa_key(capture.monitor->trace()).has_value());
  EXPECT_TRUE(ladder.recover_content_keys(capture.monitor->trace()).empty());
}

TEST_F(LadderAttackTest, EmptyTraceRecoversNothing) {
  hooking::CallTrace empty;
  KeyLadderAttack ladder(widevine::make_factory_keybox("whatever", 1));
  EXPECT_FALSE(ladder.recover_device_rsa_key(empty).has_value());
  EXPECT_TRUE(ladder.recover_content_keys(empty).empty());
}

TEST_F(LadderAttackTest, KeyboxCmacPathAlsoRecoverable) {
  // Exercise the legacy (unprovisioned) license path directly: the attack
  // must handle both schemes, as the paper's PoC does.
  auto device = eco().make_device(android::legacy_nexus5_spec(0x3404));
  DrmApiMonitor monitor(*device);

  android::MediaDrm drm(*device, android::kWidevineUuid);
  const auto session = drm.open_session();
  const auto& title = eco().title_for("OCS");
  media::PsshBox pssh;
  for (const auto& key : title.keys) pssh.key_ids.push_back(key.kid);
  const Bytes request_bytes = drm.get_key_request(session, pssh.to_box().serialize());
  const auto request = widevine::LicenseRequest::deserialize(request_bytes);
  EXPECT_EQ(request.scheme, widevine::SignatureScheme::KeyboxCmac);
  const auto response =
      eco().license_server().handle(request, widevine::permissive_revocation_policy());
  ASSERT_TRUE(response.granted);
  ASSERT_EQ(drm.provide_key_response(session, response.serialize()),
            widevine::OemCryptoResult::Success);

  const auto scan = recover_keybox(*device);
  ASSERT_TRUE(scan.success());
  KeyLadderAttack ladder(*scan.keybox);
  const RecoveredKeys keys = ladder.recover_content_keys(monitor.trace());
  EXPECT_FALSE(keys.empty());
  for (const auto& [kid_hex, key] : keys) {
    EXPECT_EQ(key, title.key_for(hex_decode(kid_hex))->key);
  }
}

// --- end-to-end ripper --------------------------------------------------------------

TEST_F(AttackTest, RipsNetflixOnLegacyDevice) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x3501));
  ContentRipper ripper(eco(), *nexus5);
  const RipResult result = ripper.rip_app(*ott::find_app("Netflix"));
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_TRUE(result.keybox_recovered);
  EXPECT_TRUE(result.device_rsa_recovered);
  EXPECT_GT(result.content_keys_recovered, 0u);
  EXPECT_EQ(result.best_video_resolution, (media::Resolution{960, 540}));
  EXPECT_TRUE(result.plays_without_account);
  EXPECT_GT(result.audio_tracks, 0u);
  // The rip output is a real playable stream.
  const media::PlaybackReport playback = media::try_play(BytesView(result.drm_free_media));
  EXPECT_TRUE(playback.playable);
  EXPECT_EQ(playback.resolution, (media::Resolution{960, 540}));
}

TEST_F(AttackTest, RipFailsForRevokedApps) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x3502));
  ContentRipper ripper(eco(), *nexus5);
  for (const char* app : {"Disney+", "HBO Max", "Starz"}) {
    const RipResult result = ripper.rip_app(*ott::find_app(app));
    EXPECT_FALSE(result.success) << app;
    EXPECT_FALSE(result.keybox_recovered) << app;  // attack aborts before the scan
    EXPECT_NE(result.failure.find("provisioning"), std::string::npos) << app;
  }
}

TEST_F(AttackTest, RipFailsForAmazonCustomDrm) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x3503));
  ContentRipper ripper(eco(), *nexus5);
  const RipResult result = ripper.rip_app(*ott::find_app("Amazon Prime Video"));
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure.find("embedded DRM"), std::string::npos);
}

TEST_F(AttackTest, RipFailsOnModernDevice) {
  // The same pipeline against a patched L3 device dies at the keybox scan.
  auto tablet = eco().make_device(android::modern_l3_only_spec(0x3504));
  ContentRipper ripper(eco(), *tablet);
  const RipResult result = ripper.rip_app(*ott::find_app("Showtime"));
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.keybox_recovered);
  EXPECT_NE(result.failure.find("keybox"), std::string::npos);
}

TEST_F(AttackTest, RippedAudioIncludesAllLanguages) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x3505));
  ContentRipper ripper(eco(), *nexus5);
  const RipResult result = ripper.rip_app(*ott::find_app("myCANAL"));
  ASSERT_TRUE(result.success) << result.failure;
  // myCANAL serves clear audio in two languages; both end up in the rip.
  EXPECT_EQ(result.audio_tracks, 2u);
  EXPECT_GT(result.subtitle_tracks, 0u);
}

}  // namespace
}  // namespace wideleak::core
