// core::CampaignRunner's chaos axis — fault-injected campaigns stay
// deterministic across worker counts, Partial cells are accounted (and flush
// their counters exactly once), and profile `none` is bit-identical to a
// campaign that never heard of fault injection.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "ott/catalog.hpp"

namespace wideleak::core {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

// Same representative slice as core_campaign_test: secure-channel (Netflix),
// custom-DRM fallback (Amazon), revocation enforcer (Disney+), plain
// service (Showtime); shrunk under tsan where scheduling, not coverage, is
// what the job exercises.
CampaignSpec chaos_spec(std::size_t workers, net::FaultProfile chaos) {
  CampaignSpec spec;
  std::vector<const char*> names = {"Netflix", "Amazon Prime Video"};
  if (!kUnderTsan) {
    names.push_back("Disney+");
    names.push_back("Showtime");
  }
  for (const char* name : names) {
    const auto app = ott::find_app(name);
    EXPECT_TRUE(app.has_value()) << name;
    spec.apps.push_back(*app);
  }
  spec.workers = workers;
  spec.chaos = chaos;
  spec.attempt_rip = false;  // the audit pass is where faults bite
  // A seed where flaky-license exhausts a retry budget in several cells —
  // including Netflix and Amazon, so the tsan-shrunk matrix still sees
  // Partial outcomes. (The spec default happens to ride out every fault.)
  spec.seed = 0xC4A05;
  return spec;
}

TEST(ChaosCampaignTest, NoneProfileIsByteIdenticalToAFaultFreeCampaign) {
  // `chaos = None` must not perturb a single rng draw: the spec default and
  // the explicit profile render the same report, and no cell shows any
  // fault-layer activity.
  CampaignSpec plain = chaos_spec(2, net::FaultProfile::None);
  const CampaignResult result = CampaignRunner(std::move(plain)).run();
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.outcome, CellOutcome::Full) << cell.app.name << "/" << cell.profile_name;
    EXPECT_TRUE(cell.fault_summary.empty());
    EXPECT_EQ(cell.stats.faults_injected, 0u);
    EXPECT_EQ(cell.stats.net_retries, 0u);
    EXPECT_EQ(cell.stats.net_giveups, 0u);
    EXPECT_GT(cell.stats.net_attempts, 0u);  // the retry layer carried traffic
  }
}

TEST(ChaosCampaignTest, FlakyLicenseReportIsBitIdenticalAcrossWorkerCounts) {
  const CampaignResult serial =
      CampaignRunner(chaos_spec(1, net::FaultProfile::FlakyLicense)).run();
  const CampaignResult parallel =
      CampaignRunner(chaos_spec(4, net::FaultProfile::FlakyLicense)).run();

  EXPECT_EQ(render_campaign_report(serial), render_campaign_report(parallel));

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].outcome, parallel.cells[i].outcome) << i;
    EXPECT_EQ(serial.cells[i].fault_summary, parallel.cells[i].fault_summary) << i;
    EXPECT_EQ(serial.cells[i].stats.net_retries, parallel.cells[i].stats.net_retries) << i;
    EXPECT_EQ(serial.cells[i].stats.net_giveups, parallel.cells[i].stats.net_giveups) << i;
    EXPECT_EQ(serial.cells[i].stats.faults_injected, parallel.cells[i].stats.faults_injected)
        << i;
  }
}

TEST(ChaosCampaignTest, FlakyLicenseProducesAccountedPartialCells) {
  const CampaignResult result =
      CampaignRunner(chaos_spec(2, net::FaultProfile::FlakyLicense)).run();

  std::size_t partial = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.outcome != CellOutcome::Partial) continue;
    ++partial;
    // A Partial cell names its fault and still carries its flushed counters:
    // the playback that died spent attempts, and the license/provisioning
    // sinks were read exactly once (they land in the campaign totals below).
    EXPECT_FALSE(cell.fault_summary.empty()) << cell.app.name << "/" << cell.profile_name;
    EXPECT_GT(cell.stats.net_attempts, 0u);
    EXPECT_GT(cell.stats.net_giveups, 0u);
  }
  EXPECT_GT(partial, 0u) << "flaky-license never exhausted a retry budget\n"
                         << render_campaign_report(result);
  EXPECT_GT(result.stats.totals.net_retries, 0u);
  EXPECT_GT(result.stats.totals.faults_injected, 0u);

  // Flush-exactly-once, verified from the outside: the campaign totals are
  // precisely the sum of the per-cell stats, Partial cells included.
  CellStats resummed;
  for (const CellResult& cell : result.cells) {
    resummed.licenses_granted += cell.stats.licenses_granted;
    resummed.licenses_denied += cell.stats.licenses_denied;
    resummed.provisionings_granted += cell.stats.provisionings_granted;
    resummed.provisionings_denied += cell.stats.provisionings_denied;
    resummed.net_attempts += cell.stats.net_attempts;
    resummed.net_giveups += cell.stats.net_giveups;
  }
  EXPECT_EQ(resummed.licenses_granted, result.stats.totals.licenses_granted);
  EXPECT_EQ(resummed.licenses_denied, result.stats.totals.licenses_denied);
  EXPECT_EQ(resummed.provisionings_granted, result.stats.totals.provisionings_granted);
  EXPECT_EQ(resummed.provisionings_denied, result.stats.totals.provisionings_denied);
  EXPECT_EQ(resummed.net_attempts, result.stats.totals.net_attempts);
  EXPECT_EQ(resummed.net_giveups, result.stats.totals.net_giveups);
}

TEST(ChaosCampaignTest, FlakyCdnDegradesPlaybackInsteadOfAbortingIt) {
  if (kUnderTsan) {
    GTEST_SKIP() << "covered by the flaky-license matrices above under tsan";
  }
  // CDN segment faults hit mid-playback: the client walks the quality
  // ladder down / skips tracks rather than giving up outright, so cells end
  // Degraded (or Full when every retry landed) far more often than Partial.
  const CampaignResult result =
      CampaignRunner(chaos_spec(2, net::FaultProfile::FlakyCdn)).run();
  EXPECT_GT(result.stats.totals.faults_injected, 0u);
  std::size_t degraded = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.outcome == CellOutcome::Degraded) {
      ++degraded;
      EXPECT_FALSE(cell.fault_summary.empty());
    }
  }
  EXPECT_GT(degraded, 0u) << "flaky-cdn never cost any cell quality";
}

}  // namespace
}  // namespace wideleak::core
