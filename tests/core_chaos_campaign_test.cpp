// core::CampaignRunner's chaos axis — fault-injected campaigns stay
// deterministic across worker counts, Partial cells are accounted (and flush
// their counters exactly once), and profile `none` is bit-identical to a
// campaign that never heard of fault injection.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "ott/catalog.hpp"

namespace wideleak::core {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

// Same representative slice as core_campaign_test: secure-channel (Netflix),
// custom-DRM fallback (Amazon), revocation enforcer (Disney+), plain
// service (Showtime); shrunk under tsan where scheduling, not coverage, is
// what the job exercises.
CampaignSpec chaos_spec(std::size_t workers, net::FaultProfile chaos) {
  CampaignSpec spec;
  std::vector<const char*> names = {"Netflix", "Amazon Prime Video"};
  if (!kUnderTsan) {
    names.push_back("Disney+");
    names.push_back("Showtime");
  }
  for (const char* name : names) {
    const auto app = ott::find_app(name);
    EXPECT_TRUE(app.has_value()) << name;
    spec.apps.push_back(*app);
  }
  spec.workers = workers;
  spec.chaos = chaos;
  spec.attempt_rip = false;  // the audit pass is where faults bite
  // A seed where flaky-license exhausts a retry budget in several cells —
  // including Netflix and Amazon, so the tsan-shrunk matrix still sees
  // Partial outcomes. (The spec default happens to ride out every fault.)
  spec.seed = 0xC4A05;
  return spec;
}

TEST(ChaosCampaignTest, NoneProfileIsByteIdenticalToAFaultFreeCampaign) {
  // `chaos = None` must not perturb a single rng draw: the spec default and
  // the explicit profile render the same report, and no cell shows any
  // fault-layer activity.
  CampaignSpec plain = chaos_spec(2, net::FaultProfile::None);
  const CampaignResult result = CampaignRunner(std::move(plain)).run();
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.outcome, CellOutcome::Full) << cell.app.name << "/" << cell.profile_name;
    EXPECT_TRUE(cell.fault_summary.empty());
    EXPECT_EQ(cell.stats.faults_injected, 0u);
    EXPECT_EQ(cell.stats.net_retries, 0u);
    EXPECT_EQ(cell.stats.net_giveups, 0u);
    EXPECT_GT(cell.stats.net_attempts, 0u);  // the retry layer carried traffic
  }
}

TEST(ChaosCampaignTest, FlakyLicenseReportIsBitIdenticalAcrossWorkerCounts) {
  const CampaignResult serial =
      CampaignRunner(chaos_spec(1, net::FaultProfile::FlakyLicense)).run();
  const CampaignResult parallel =
      CampaignRunner(chaos_spec(4, net::FaultProfile::FlakyLicense)).run();

  EXPECT_EQ(render_campaign_report(serial), render_campaign_report(parallel));

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].outcome, parallel.cells[i].outcome) << i;
    EXPECT_EQ(serial.cells[i].fault_summary, parallel.cells[i].fault_summary) << i;
    EXPECT_EQ(serial.cells[i].stats.net_retries, parallel.cells[i].stats.net_retries) << i;
    EXPECT_EQ(serial.cells[i].stats.net_giveups, parallel.cells[i].stats.net_giveups) << i;
    EXPECT_EQ(serial.cells[i].stats.faults_injected, parallel.cells[i].stats.faults_injected)
        << i;
  }
}

TEST(ChaosCampaignTest, FlakyLicenseProducesAccountedPartialCells) {
  const CampaignResult result =
      CampaignRunner(chaos_spec(2, net::FaultProfile::FlakyLicense)).run();

  std::size_t partial = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.outcome != CellOutcome::Partial) continue;
    ++partial;
    // A Partial cell names its fault and still carries its flushed counters:
    // the playback that died spent attempts, and the license/provisioning
    // sinks were read exactly once (they land in the campaign totals below).
    EXPECT_FALSE(cell.fault_summary.empty()) << cell.app.name << "/" << cell.profile_name;
    EXPECT_GT(cell.stats.net_attempts, 0u);
    EXPECT_GT(cell.stats.net_giveups, 0u);
  }
  EXPECT_GT(partial, 0u) << "flaky-license never exhausted a retry budget\n"
                         << render_campaign_report(result);
  EXPECT_GT(result.stats.totals.net_retries, 0u);
  EXPECT_GT(result.stats.totals.faults_injected, 0u);

  // Flush-exactly-once, verified from the outside: the campaign totals are
  // precisely the sum of the per-cell stats, Partial cells included.
  CellStats resummed;
  for (const CellResult& cell : result.cells) {
    resummed.licenses_granted += cell.stats.licenses_granted;
    resummed.licenses_denied += cell.stats.licenses_denied;
    resummed.provisionings_granted += cell.stats.provisionings_granted;
    resummed.provisionings_denied += cell.stats.provisionings_denied;
    resummed.net_attempts += cell.stats.net_attempts;
    resummed.net_giveups += cell.stats.net_giveups;
  }
  EXPECT_EQ(resummed.licenses_granted, result.stats.totals.licenses_granted);
  EXPECT_EQ(resummed.licenses_denied, result.stats.totals.licenses_denied);
  EXPECT_EQ(resummed.provisionings_granted, result.stats.totals.provisionings_granted);
  EXPECT_EQ(resummed.provisionings_denied, result.stats.totals.provisionings_denied);
  EXPECT_EQ(resummed.net_attempts, result.stats.totals.net_attempts);
  EXPECT_EQ(resummed.net_giveups, result.stats.totals.net_giveups);
}

TEST(ChaosCampaignTest, FlakyCdnDegradesPlaybackInsteadOfAbortingIt) {
  if (kUnderTsan) {
    GTEST_SKIP() << "covered by the flaky-license matrices above under tsan";
  }
  // CDN segment faults hit mid-playback: the client walks the quality
  // ladder down / skips tracks rather than giving up outright, so cells end
  // Degraded (or Full when every retry landed) far more often than Partial.
  const CampaignResult result =
      CampaignRunner(chaos_spec(2, net::FaultProfile::FlakyCdn)).run();
  EXPECT_GT(result.stats.totals.faults_injected, 0u);
  std::size_t degraded = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.outcome == CellOutcome::Degraded) {
      ++degraded;
      EXPECT_FALSE(cell.fault_summary.empty());
    }
  }
  EXPECT_GT(degraded, 0u) << "flaky-cdn never cost any cell quality";
}

// ---------------------------------------------------------------------------
// Service-side chaos: shard crash/restart, breaker accounting, deadlines.

/// The chaos_spec matrix armed with a DrmService fault plan and a breaker.
CampaignSpec service_chaos_spec(std::size_t workers, ExecutionMode mode,
                                const std::string& plan) {
  CampaignSpec spec = chaos_spec(workers, net::FaultProfile::None);
  spec.mode = mode;
  spec.service_chaos = widevine::chaos_plan_for(plan);
  spec.breaker.failure_threshold = 3;
  spec.breaker.open_ticks = 24;
  return spec;
}

TEST(ServiceChaosCampaignTest, ShardCrashReportIsBitIdenticalAcrossWorkersAndModes) {
  const CampaignResult serial =
      CampaignRunner(service_chaos_spec(1, ExecutionMode::Synchronous, "shard-crash")).run();
  const CampaignResult parallel =
      CampaignRunner(service_chaos_spec(4, ExecutionMode::Pipelined, "shard-crash")).run();

  EXPECT_EQ(render_campaign_report(serial), render_campaign_report(parallel));

  // The crash window actually bit: sessions were dropped, clients walked
  // reopen cycles, and no cell was lost — every one landed on an outcome.
  EXPECT_GT(serial.stats.totals.drm_sessions_dropped, 0u);
  EXPECT_GT(serial.stats.totals.net_reopens, 0u);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].outcome, parallel.cells[i].outcome) << i;
    EXPECT_EQ(serial.cells[i].fault_summary, parallel.cells[i].fault_summary) << i;
    EXPECT_EQ(serial.cells[i].stats.net_reopens, parallel.cells[i].stats.net_reopens) << i;
    EXPECT_EQ(serial.cells[i].stats.drm_sessions_dropped,
              parallel.cells[i].stats.drm_sessions_dropped)
        << i;
    EXPECT_EQ(serial.cells[i].stats.breaker_opens, parallel.cells[i].stats.breaker_opens) << i;
    EXPECT_EQ(serial.cells[i].stats.breaker_fast_fails,
              parallel.cells[i].stats.breaker_fast_fails)
        << i;
  }
}

TEST(ServiceChaosCampaignTest, EmptyChaosPlanLeavesResilienceCountersDark) {
  // The default spec (no service chaos, breaker disabled, no deadline) must
  // not light a single resilience counter — the neutral-wiring contract.
  const CampaignResult result =
      CampaignRunner(chaos_spec(2, net::FaultProfile::None)).run();
  const CellStats& totals = result.stats.totals;
  EXPECT_EQ(totals.drm_sessions_dropped, 0u);
  EXPECT_EQ(totals.drm_shard_refusals, 0u);
  EXPECT_EQ(totals.drm_load_shed, 0u);
  EXPECT_EQ(totals.drm_brownout_denied, 0u);
  EXPECT_EQ(totals.drm_recovery_ticks, 0u);
  EXPECT_EQ(totals.breaker_opens, 0u);
  EXPECT_EQ(totals.breaker_fast_fails, 0u);
  EXPECT_EQ(totals.net_reopens, 0u);
  EXPECT_EQ(totals.deadline_cancelled, 0u);
}

TEST(ServiceChaosCampaignTest, DeadlineBudgetCancelsCellsCleanlyInBothModes) {
  // Brownout latency advances every cell's private clock fast; a tight
  // deadline budget has to cancel cells at a stage boundary — identically
  // in both scheduler modes and at any worker count.
  const auto spec = [](std::size_t workers, ExecutionMode mode) {
    CampaignSpec spec = service_chaos_spec(workers, mode, "brownout");
    spec.cell_deadline_ticks = 48;
    return spec;
  };
  const CampaignResult sync = CampaignRunner(spec(1, ExecutionMode::Synchronous)).run();
  const CampaignResult piped = CampaignRunner(spec(8, ExecutionMode::Pipelined)).run();

  EXPECT_EQ(render_campaign_report(sync), render_campaign_report(piped));

  std::size_t cancelled = 0;
  ASSERT_EQ(sync.cells.size(), piped.cells.size());
  for (std::size_t i = 0; i < sync.cells.size(); ++i) {
    const CellResult& cell = sync.cells[i];
    EXPECT_EQ(cell.outcome, piped.cells[i].outcome) << i;
    EXPECT_EQ(cell.fault_summary, piped.cells[i].fault_summary) << i;
    EXPECT_EQ(cell.stats.deadline_cancelled, piped.cells[i].stats.deadline_cancelled) << i;
    if (cell.stats.deadline_cancelled == 0) continue;
    ++cancelled;
    // A deadline-expired cell is Partial and says so in its summary.
    EXPECT_EQ(cell.outcome, CellOutcome::Partial) << i;
    EXPECT_EQ(cell.fault_summary.rfind("deadline_exceeded", 0), 0u) << cell.fault_summary;
  }
  EXPECT_GT(cancelled, 0u) << "the deadline budget never fired\n"
                           << render_campaign_report(sync);
  EXPECT_EQ(cancelled, sync.stats.totals.deadline_cancelled);
  // The pipelined scheduler released the cancelled cells' pending waits.
  EXPECT_GT(piped.stats.pipeline.cells_cancelled, 0u);
}

TEST(ServiceChaosCampaignTest, ResilienceCountersFlushExactlyOnceAtAnyWorkerCount) {
  // Satellite audit: cancelled and crashed cells contribute every resilience
  // counter exactly once — the campaign totals are precisely the per-cell
  // sums, at 1 worker and at 8, for both the crash and the deadline paths.
  const auto audit = [](const CampaignResult& result) {
    CellStats resummed;
    for (const CellResult& cell : result.cells) {
      resummed.net_reopens += cell.stats.net_reopens;
      resummed.breaker_opens += cell.stats.breaker_opens;
      resummed.breaker_fast_fails += cell.stats.breaker_fast_fails;
      resummed.drm_sessions_dropped += cell.stats.drm_sessions_dropped;
      resummed.drm_shard_refusals += cell.stats.drm_shard_refusals;
      resummed.drm_load_shed += cell.stats.drm_load_shed;
      resummed.drm_brownout_denied += cell.stats.drm_brownout_denied;
      resummed.drm_recovery_ticks += cell.stats.drm_recovery_ticks;
      resummed.deadline_cancelled += cell.stats.deadline_cancelled;
    }
    const CellStats& totals = result.stats.totals;
    EXPECT_EQ(resummed.net_reopens, totals.net_reopens);
    EXPECT_EQ(resummed.breaker_opens, totals.breaker_opens);
    EXPECT_EQ(resummed.breaker_fast_fails, totals.breaker_fast_fails);
    EXPECT_EQ(resummed.drm_sessions_dropped, totals.drm_sessions_dropped);
    EXPECT_EQ(resummed.drm_shard_refusals, totals.drm_shard_refusals);
    EXPECT_EQ(resummed.drm_load_shed, totals.drm_load_shed);
    EXPECT_EQ(resummed.drm_brownout_denied, totals.drm_brownout_denied);
    EXPECT_EQ(resummed.drm_recovery_ticks, totals.drm_recovery_ticks);
    EXPECT_EQ(resummed.deadline_cancelled, totals.deadline_cancelled);
  };

  CampaignSpec crash1 = service_chaos_spec(1, ExecutionMode::Pipelined, "shard-crash");
  CampaignSpec crash8 = service_chaos_spec(8, ExecutionMode::Pipelined, "shard-crash");
  const CampaignResult serial_crash = CampaignRunner(std::move(crash1)).run();
  const CampaignResult wide_crash = CampaignRunner(std::move(crash8)).run();
  audit(serial_crash);
  audit(wide_crash);
  EXPECT_EQ(render_campaign_report(serial_crash), render_campaign_report(wide_crash));

  CampaignSpec deadline8 = service_chaos_spec(8, ExecutionMode::Pipelined, "brownout");
  deadline8.cell_deadline_ticks = 48;
  const CampaignResult wide_deadline = CampaignRunner(std::move(deadline8)).run();
  audit(wide_deadline);
  EXPECT_GT(wide_deadline.stats.totals.deadline_cancelled, 0u);
}

}  // namespace
}  // namespace wideleak::core
