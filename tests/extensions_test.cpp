// Tests for the extension features beyond the paper's core study:
//   - certified-level verification and the §V-C profile-spoof experiment
//     (the netflix-1080p exploit adapted to Android),
//   - provisioning anti-replay,
//   - license duration (usage control) enforcement.
#include <gtest/gtest.h>

#include "core/key_ladder_attack.hpp"
#include "core/keybox_recovery.hpp"
#include "core/monitor.hpp"
#include "media/cenc.hpp"
#include "ott/catalog.hpp"
#include "ott/ecosystem.hpp"
#include "ott/playback.hpp"

namespace wideleak {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new ott::StreamingEcosystem();
    ecosystem_->install_catalog();
  }

  static ott::StreamingEcosystem& eco() { return *ecosystem_; }
  static ott::StreamingEcosystem* ecosystem_;

  // Recover the attacker's credentials from one instrumented playback.
  struct Credentials {
    widevine::Keybox keybox;
    crypto::RsaKeyPair rsa;
    widevine::ClientIdentity identity;
  };
  static Credentials steal_credentials(android::Device& device) {
    core::DrmApiMonitor monitor(device);
    ott::OttApp app(*ott::find_app("Showtime"), eco(), device);
    EXPECT_TRUE(app.play_title().played);
    const auto scan = core::recover_keybox(device);
    EXPECT_TRUE(scan.success());
    core::KeyLadderAttack ladder(*scan.keybox);
    const auto rsa = ladder.recover_device_rsa_key(monitor.trace());
    EXPECT_TRUE(rsa.has_value());
    return Credentials{*scan.keybox, *rsa, device.identity()};
  }
};

ott::StreamingEcosystem* ExtensionsTest::ecosystem_ = nullptr;

// --- certified levels ----------------------------------------------------

TEST_F(ExtensionsTest, CertifiedLevelsRecordedAtFactory) {
  auto l1 = eco().make_device(android::modern_l1_spec(0x5101));
  auto l3 = eco().make_device(android::legacy_nexus5_spec(0x5102));
  EXPECT_EQ(eco().device_roots()->certified_level_for(l1->identity().stable_id),
            widevine::SecurityLevel::L1);
  EXPECT_EQ(eco().device_roots()->certified_level_for(l3->identity().stable_id),
            widevine::SecurityLevel::L3);
  EXPECT_EQ(eco().device_roots()->certified_level_for(to_bytes("unknown")),
            widevine::SecurityLevel::L3);
}

// --- §V-C: profile spoofing ------------------------------------------------

TEST_F(ExtensionsTest, StrictServerIgnoresSpoofedL1Claim) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x5201));
  Credentials creds = steal_credentials(*nexus5);

  // Forge a request claiming L1 from the (certified-L3) legacy device.
  core::KeyLadderAttack ladder(creds.keybox);
  ladder.set_device_rsa_key(creds.rsa);
  widevine::ClientIdentity spoofed = creds.identity;
  spoofed.level = widevine::SecurityLevel::L1;
  Rng rng = eco().fork_rng();
  const auto& title = eco().title_for("Showtime");
  std::vector<media::KeyId> kids;
  for (const auto& key : title.keys) kids.push_back(key.kid);
  const auto request = ladder.forge_license_request(spoofed, kids, rng);

  ASSERT_EQ(eco().license_server().level_verification(),
            widevine::LevelVerification::Strict);
  const auto response =
      eco().license_server().handle(request, widevine::permissive_revocation_policy());
  ASSERT_TRUE(response.granted) << response.deny_reason;
  const auto keys = ladder.decrypt_license_response(request, response);
  // Strict verification: still only the sub-HD keys.
  for (const auto& key : title.keys) {
    EXPECT_EQ(keys.contains(hex_encode(key.kid)), !key.resolution.is_hd())
        << key.resolution.label();
  }
}

TEST_F(ExtensionsTest, TrustingServerLeaksHdKeysToSpoofedClaim) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x5202));
  Credentials creds = steal_credentials(*nexus5);

  core::KeyLadderAttack ladder(creds.keybox);
  ladder.set_device_rsa_key(creds.rsa);
  widevine::ClientIdentity spoofed = creds.identity;
  spoofed.level = widevine::SecurityLevel::L1;
  Rng rng = eco().fork_rng();
  const auto& title = eco().title_for("Showtime");
  std::vector<media::KeyId> kids;
  for (const auto& key : title.keys) kids.push_back(key.kid);
  const auto request = ladder.forge_license_request(spoofed, kids, rng);

  // Flip the server to browser-CDM behaviour (no strong verification).
  eco().license_server().set_level_verification(widevine::LevelVerification::TrustClient);
  const auto response =
      eco().license_server().handle(request, widevine::permissive_revocation_policy());
  eco().license_server().set_level_verification(widevine::LevelVerification::Strict);

  ASSERT_TRUE(response.granted);
  const auto keys = ladder.decrypt_license_response(request, response);
  // ALL keys, including 1080p, from an L3 device.
  EXPECT_EQ(keys.size(), title.keys.size());

  // And they really decrypt the HD track.
  const auto* hd = title.mpd.of_type(media::TrackType::Video).back();
  ASSERT_EQ(hd->resolution.height, 1080);
  const auto track = media::PackagedTrack::from_file(BytesView(title.files.at(hd->base_url)));
  const Bytes clear = media::cenc_decrypt_track(track, keys.at(hex_encode(track.key_id)));
  EXPECT_TRUE(media::try_play(BytesView(clear)).playable);
}

TEST_F(ExtensionsTest, ForgedRequestsVerifyLikeRealOnes) {
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x5203));
  Credentials creds = steal_credentials(*nexus5);
  core::KeyLadderAttack ladder(creds.keybox);
  ladder.set_device_rsa_key(creds.rsa);
  Rng rng = eco().fork_rng();
  const auto& title = eco().title_for("OCS");
  const auto request =
      ladder.forge_license_request(creds.identity, {title.keys[0].kid}, rng);
  const auto response =
      eco().license_server().handle(request, widevine::permissive_revocation_policy());
  EXPECT_TRUE(response.granted) << response.deny_reason;
  EXPECT_EQ(ladder.decrypt_license_response(request, response).size(), 1u);
}

TEST_F(ExtensionsTest, ForgedKeyboxPathRequestAlsoWorks) {
  // Without a recovered RSA key the attack falls back to the CMAC scheme.
  auto nexus5 = eco().make_device(android::legacy_nexus5_spec(0x5204));
  const auto scan_device = [&] {
    ott::OttApp app(*ott::find_app("OCS"), eco(), *nexus5);
    EXPECT_TRUE(app.play_title().played);
    return core::recover_keybox(*nexus5);
  }();
  ASSERT_TRUE(scan_device.success());
  core::KeyLadderAttack ladder(*scan_device.keybox);  // no RSA key set
  Rng rng = eco().fork_rng();
  const auto& title = eco().title_for("OCS");
  const auto request =
      ladder.forge_license_request(nexus5->identity(), {title.keys[0].kid}, rng);
  EXPECT_EQ(request.scheme, widevine::SignatureScheme::KeyboxCmac);
  const auto response =
      eco().license_server().handle(request, widevine::permissive_revocation_policy());
  ASSERT_TRUE(response.granted) << response.deny_reason;
  const auto keys = ladder.decrypt_license_response(request, response);
  EXPECT_EQ(keys.at(hex_encode(title.keys[0].kid)), title.keys[0].key);
}

// --- provisioning anti-replay -----------------------------------------------

TEST_F(ExtensionsTest, ProvisioningReplayIsRejected) {
  auto device = eco().make_device(android::modern_l1_spec(0x5301));
  android::MediaDrm drm(*device, android::kWidevineUuid);
  const Bytes request_bytes = drm.get_provision_request();
  const auto request = widevine::ProvisioningRequest::deserialize(request_bytes);

  const auto first = eco().provisioning_server().handle(request);
  EXPECT_TRUE(first.granted) << first.deny_reason;
  const auto replay = eco().provisioning_server().handle(request);
  EXPECT_FALSE(replay.granted);
  EXPECT_EQ(replay.deny_reason, "replayed provisioning nonce");
  // A fresh request (new nonce) still succeeds.
  ASSERT_TRUE(drm.provide_provision_response(first.serialize()));
  const auto fresh = widevine::ProvisioningRequest::deserialize(drm.get_provision_request());
  EXPECT_TRUE(eco().provisioning_server().handle(fresh).granted);
}

// --- license duration -------------------------------------------------------

TEST_F(ExtensionsTest, LicenseDurationEnforcedByCdmClock) {
  // A private world so the duration policy does not leak into other tests.
  ott::StreamingEcosystem world;
  world.install_app(*ott::find_app("Showtime"));
  world.license_server().set_license_duration(100);
  auto device = world.make_device(android::modern_l1_spec(0x5401));

  ott::OttApp app(*ott::find_app("Showtime"), world, *device);
  ASSERT_TRUE(app.play_title().played);

  // Re-license a session manually so we can poke at expiry.
  android::MediaDrm drm(*device, android::kWidevineUuid);
  const auto session = drm.open_session();
  const auto& title = world.title_for("Showtime");
  media::PsshBox pssh;
  pssh.key_ids.push_back(title.keys[0].kid);
  const Bytes request = drm.get_key_request(session, pssh.to_box().serialize());
  const auto response = world.license_server().handle(
      widevine::LicenseRequest::deserialize(request),
      widevine::permissive_revocation_policy());
  ASSERT_TRUE(response.granted);
  EXPECT_EQ(response.license_duration, 100u);
  ASSERT_EQ(drm.provide_key_response(session, response.serialize()),
            widevine::OemCryptoResult::Success);

  auto& oec = device->cdm().oemcrypto();
  ASSERT_EQ(oec.select_key(session, title.keys[0].kid), widevine::OemCryptoResult::Success);
  Bytes out;
  // Within the window: decrypt works.
  oec.advance_clock(50);
  EXPECT_EQ(oec.decrypt_cenc(session, Bytes(8, 0), to_bytes("ct"), out),
            widevine::OemCryptoResult::Success);
  // Past the window: the keys stop working.
  oec.advance_clock(100);
  EXPECT_EQ(oec.decrypt_cenc(session, Bytes(8, 0), to_bytes("ct"), out),
            widevine::OemCryptoResult::KeyExpired);

  // A fresh license restores playback (renewal).
  const auto session2 = drm.open_session();
  const Bytes request2 = drm.get_key_request(session2, pssh.to_box().serialize());
  const auto response2 = world.license_server().handle(
      widevine::LicenseRequest::deserialize(request2),
      widevine::permissive_revocation_policy());
  ASSERT_EQ(drm.provide_key_response(session2, response2.serialize()),
            widevine::OemCryptoResult::Success);
  ASSERT_EQ(oec.select_key(session2, title.keys[0].kid), widevine::OemCryptoResult::Success);
  EXPECT_EQ(oec.decrypt_cenc(session2, Bytes(8, 0), to_bytes("ct"), out),
            widevine::OemCryptoResult::Success);
}

TEST_F(ExtensionsTest, UnlimitedLicensesNeverExpire) {
  ott::StreamingEcosystem world;
  world.install_app(*ott::find_app("OCS"));
  auto device = world.make_device(android::modern_l1_spec(0x5402));
  ott::OttApp app(*ott::find_app("OCS"), world, *device);
  ASSERT_TRUE(app.play_title().played);
  device->cdm().oemcrypto().advance_clock(1u << 30);
  // Playback still works after an enormous clock jump.
  EXPECT_TRUE(app.play_title().played);
}

TEST_F(ExtensionsTest, DurationIsMacProtected) {
  // Tampering with the duration field invalidates the response MAC.
  ott::StreamingEcosystem world;
  world.install_app(*ott::find_app("OCS"));
  world.license_server().set_license_duration(10);
  auto device = world.make_device(android::modern_l1_spec(0x5403));
  ott::OttApp app(*ott::find_app("OCS"), world, *device);
  ASSERT_TRUE(app.play_title().played);

  android::MediaDrm drm(*device, android::kWidevineUuid);
  const auto session = drm.open_session();
  const auto& title = world.title_for("OCS");
  media::PsshBox pssh;
  pssh.key_ids.push_back(title.keys[0].kid);
  const Bytes request = drm.get_key_request(session, pssh.to_box().serialize());
  auto response = world.license_server().handle(
      widevine::LicenseRequest::deserialize(request),
      widevine::permissive_revocation_policy());
  ASSERT_TRUE(response.granted);
  response.license_duration = 0;  // attacker strips the limit
  EXPECT_EQ(drm.provide_key_response(session, response.serialize()),
            widevine::OemCryptoResult::SignatureFailure);
}

}  // namespace
}  // namespace wideleak
