// OEMCrypto core tests, parameterized over the three CDM configurations the
// study distinguishes: legacy L3 (insecure keybox storage), patched L3, and
// L1 (TEE-backed).
#include <gtest/gtest.h>

#include <memory>

#include "crypto/hmac.hpp"
#include "crypto/modes.hpp"
#include "hooking/hook_bus.hpp"
#include "support/errors.hpp"
#include "widevine/key_ladder.hpp"
#include "widevine/oemcrypto.hpp"

namespace wideleak::widevine {
namespace {

struct CdmConfigCase {
  const char* name;
  SecurityLevel level;
  CdmVersion version;
};

class OemCryptoTest : public ::testing::TestWithParam<CdmConfigCase> {
 protected:
  OemCryptoTest()
      : host_("mediadrmserver"),
        keybox_(make_factory_keybox("oec-test-device", 7)) {
    OemCryptoConfig config;
    config.level = GetParam().level;
    config.version = GetParam().version;
    config.host = &host_;
    config.tee = &tee_;
    config.seed = 99;
    oec_ = std::make_unique<OemCrypto>(config);
  }

  // Build a valid, MACed license-response body + containers for load_keys.
  struct FakeLicense {
    Bytes response_body;
    Bytes mac;
    std::vector<KeyContainer> containers;
    std::map<std::string, Bytes> keys;  // hex(kid) -> key
  };
  FakeLicense make_license(const SessionKeys& session_keys,
                           const std::vector<SecurityLevel>& levels) {
    Rng rng(4242);
    FakeLicense license;
    LicenseResponse response;
    response.granted = true;
    const crypto::Aes enc(session_keys.enc_key);
    for (SecurityLevel level : levels) {
      KeyContainer container;
      container.kid = rng.next_bytes(16);
      container.iv = rng.next_bytes(16);
      const Bytes key = rng.next_bytes(16);
      container.wrapped_key = crypto::aes_cbc_encrypt_nopad(enc, container.iv, key);
      container.min_level = level;
      license.keys[hex_encode(container.kid)] = key;
      response.keys.push_back(container);
    }
    license.containers = response.keys;
    license.response_body = response.body();
    license.mac = crypto::hmac_sha256(session_keys.mac_key_server, license.response_body);
    return license;
  }

  hooking::SimProcess host_;
  Tee tee_;
  Keybox keybox_;
  std::unique_ptr<OemCrypto> oec_;
};

INSTANTIATE_TEST_SUITE_P(
    CdmConfigs, OemCryptoTest,
    ::testing::Values(CdmConfigCase{"legacy_l3", SecurityLevel::L3, kLegacyCdm},
                      CdmConfigCase{"patched_l3", SecurityLevel::L3, kCurrentCdm},
                      CdmConfigCase{"l1", SecurityLevel::L1, kCurrentCdm}),
    [](const auto& info) { return info.param.name; });

TEST_P(OemCryptoTest, KeyboxInstallAndIdentity) {
  EXPECT_FALSE(oec_->is_keybox_valid());
  oec_->install_keybox(keybox_);
  EXPECT_TRUE(oec_->is_keybox_valid());
  EXPECT_EQ(oec_->stable_id(), keybox_.stable_id());
  EXPECT_EQ(oec_->get_key_data(), keybox_.key_data());
}

TEST_P(OemCryptoTest, KeyboxStorageMatchesThreatModel) {
  oec_->install_keybox(keybox_);
  const Bytes raw = keybox_.serialize();
  const auto ree_hits = host_.memory().scan(BytesView(raw));
  const auto tee_hits = tee_.secure_memory().scan(BytesView(raw));
  switch (GetParam().level) {
    case SecurityLevel::L3:
      if (GetParam().version.has_insecure_keybox_storage()) {
        EXPECT_EQ(ree_hits.size(), 1u) << "legacy L3 maps the raw keybox (CWE-922)";
      } else {
        EXPECT_TRUE(ree_hits.empty()) << "patched L3 only maps a masked copy";
        EXPECT_GT(host_.memory().region_count(), 0u);
      }
      EXPECT_TRUE(tee_hits.empty());
      break;
    case SecurityLevel::L1:
      EXPECT_TRUE(ree_hits.empty()) << "L1 keeps the keybox in the TEE";
      EXPECT_EQ(tee_hits.size(), 1u);
      break;
  }
}

TEST_P(OemCryptoTest, SessionLifecycle) {
  const auto s1 = oec_->open_session();
  const auto s2 = oec_->open_session();
  EXPECT_NE(s1, s2);
  oec_->close_session(s1);
  EXPECT_THROW(oec_->close_session(s1), StateError);
  EXPECT_THROW(oec_->generate_nonce(s1), StateError);
  oec_->close_session(s2);
}

TEST_P(OemCryptoTest, NonceIsFreshPerCall) {
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  EXPECT_NE(oec_->generate_nonce(session), oec_->generate_nonce(session));
}

TEST_P(OemCryptoTest, DerivedKeysRequireKeybox) {
  const auto session = oec_->open_session();
  Bytes ctx = to_bytes("context");
  EXPECT_EQ(oec_->generate_derived_keys(session, ctx, ctx), OemCryptoResult::NoKeybox);
  Bytes sig;
  EXPECT_EQ(oec_->generate_signature(session, ctx, sig), OemCryptoResult::SignatureFailure);
}

TEST_P(OemCryptoTest, SignatureMatchesLadderDerivation) {
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  const Bytes ctx = to_bytes("request-body-as-context");
  ASSERT_EQ(oec_->generate_derived_keys(session, ctx, ctx), OemCryptoResult::Success);
  Bytes sig;
  ASSERT_EQ(oec_->generate_signature(session, ctx, sig), OemCryptoResult::Success);
  const SessionKeys expected = derive_session_keys(keybox_.device_key(), ctx, ctx);
  EXPECT_EQ(sig, crypto::hmac_sha256(expected.mac_key_client, ctx));
}

TEST_P(OemCryptoTest, LoadKeysVerifiesServerMac) {
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  const Bytes ctx = to_bytes("ctx");
  ASSERT_EQ(oec_->generate_derived_keys(session, ctx, ctx), OemCryptoResult::Success);
  const SessionKeys keys = derive_session_keys(keybox_.device_key(), ctx, ctx);
  FakeLicense license = make_license(keys, {SecurityLevel::L3});

  // Tampered MAC rejected.
  Bytes bad_mac = license.mac;
  bad_mac[0] ^= 1;
  EXPECT_EQ(oec_->load_keys(session, license.response_body, bad_mac, license.containers),
            OemCryptoResult::SignatureFailure);
  EXPECT_TRUE(oec_->loaded_key_ids(session).empty());

  // Valid MAC accepted.
  EXPECT_EQ(oec_->load_keys(session, license.response_body, license.mac, license.containers),
            OemCryptoResult::Success);
  EXPECT_EQ(oec_->loaded_key_ids(session).size(), 1u);
}

TEST_P(OemCryptoTest, KeyControlBlocksL1KeysOnL3) {
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  const Bytes ctx = to_bytes("ctx");
  ASSERT_EQ(oec_->generate_derived_keys(session, ctx, ctx), OemCryptoResult::Success);
  const SessionKeys keys = derive_session_keys(keybox_.device_key(), ctx, ctx);
  FakeLicense license = make_license(keys, {SecurityLevel::L1, SecurityLevel::L3});
  ASSERT_EQ(oec_->load_keys(session, license.response_body, license.mac, license.containers),
            OemCryptoResult::Success);
  const std::size_t expected = GetParam().level == SecurityLevel::L1 ? 2u : 1u;
  EXPECT_EQ(oec_->loaded_key_ids(session).size(), expected);
}

TEST_P(OemCryptoTest, DecryptCencRoundTrip) {
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  const Bytes ctx = to_bytes("ctx");
  ASSERT_EQ(oec_->generate_derived_keys(session, ctx, ctx), OemCryptoResult::Success);
  const SessionKeys keys = derive_session_keys(keybox_.device_key(), ctx, ctx);
  FakeLicense license = make_license(keys, {SecurityLevel::L3});
  ASSERT_EQ(oec_->load_keys(session, license.response_body, license.mac, license.containers),
            OemCryptoResult::Success);

  const media::KeyId kid = license.containers[0].kid;
  // A kid is a public identifier even when pulled from license state. wl-lint: taint-ok
  const Bytes& content_key = license.keys.at(hex_encode(kid));
  ASSERT_EQ(oec_->select_key(session, kid), OemCryptoResult::Success);

  Rng rng(5);
  const Bytes iv = rng.next_bytes(8);
  const Bytes plaintext = rng.next_bytes(333);
  Bytes full_iv = iv;
  full_iv.resize(16, 0);
  const crypto::Aes aes(content_key);
  const Bytes ciphertext = crypto::aes_ctr_crypt(aes, full_iv, plaintext);

  Bytes decrypted;
  ASSERT_EQ(oec_->decrypt_cenc(session, iv, ciphertext, decrypted), OemCryptoResult::Success);
  EXPECT_EQ(decrypted, plaintext);
}

TEST_P(OemCryptoTest, DecryptWithoutSelectedKeyFails) {
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  Bytes out;
  EXPECT_EQ(oec_->decrypt_cenc(session, Bytes(8, 0), to_bytes("ct"), out),
            OemCryptoResult::KeyNotLoaded);
  EXPECT_EQ(oec_->select_key(session, Bytes(16, 1)), OemCryptoResult::KeyNotLoaded);
}

TEST_P(OemCryptoTest, GenericCryptoRoundTrip) {
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  const Bytes ctx = to_bytes("ctx");
  ASSERT_EQ(oec_->generate_derived_keys(session, ctx, ctx), OemCryptoResult::Success);
  const SessionKeys keys = derive_session_keys(keybox_.device_key(), ctx, ctx);
  FakeLicense license = make_license(keys, {SecurityLevel::L3});
  ASSERT_EQ(oec_->load_keys(session, license.response_body, license.mac, license.containers),
            OemCryptoResult::Success);
  ASSERT_EQ(oec_->select_key(session, license.containers[0].kid), OemCryptoResult::Success);

  Rng rng(6);
  const Bytes iv = rng.next_bytes(16);
  const Bytes plaintext = to_bytes("non-DASH protected URI list");
  Bytes ciphertext, decrypted, tag;
  ASSERT_EQ(oec_->generic_encrypt(session, iv, plaintext, ciphertext),
            OemCryptoResult::Success);
  EXPECT_NE(ciphertext, plaintext);
  ASSERT_EQ(oec_->generic_decrypt(session, iv, ciphertext, decrypted),
            OemCryptoResult::Success);
  EXPECT_EQ(decrypted, plaintext);
  ASSERT_EQ(oec_->generic_sign(session, plaintext, tag), OemCryptoResult::Success);
  EXPECT_EQ(oec_->generic_verify(session, plaintext, tag), OemCryptoResult::Success);
  Bytes bad_tag = tag;
  bad_tag[0] ^= 1;
  EXPECT_EQ(oec_->generic_verify(session, plaintext, bad_tag),
            OemCryptoResult::SignatureFailure);
}

TEST_P(OemCryptoTest, HookEventsCarryTheRightModule) {
  hooking::TraceSession trace(host_.bus());
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  (void)oec_->generate_nonce(session);
  ASSERT_GE(trace.trace().size(), 3u);
  const char* expected_module =
      GetParam().level == SecurityLevel::L1 ? kOemCryptoModule : kWvDrmEngineModule;
  for (const auto& record : trace.trace().records()) {
    EXPECT_EQ(record.module, expected_module);
    EXPECT_EQ(record.function.rfind("_oecc", 0), 0u);
  }
}

TEST_P(OemCryptoTest, ContentKeysLiveInTheRightMemory) {
  oec_->install_keybox(keybox_);
  const auto session = oec_->open_session();
  const Bytes ctx = to_bytes("ctx");
  ASSERT_EQ(oec_->generate_derived_keys(session, ctx, ctx), OemCryptoResult::Success);
  const SessionKeys keys = derive_session_keys(keybox_.device_key(), ctx, ctx);
  FakeLicense license = make_license(keys, {SecurityLevel::L3});
  ASSERT_EQ(oec_->load_keys(session, license.response_body, license.mac, license.containers),
            OemCryptoResult::Success);
  const Bytes& content_key = license.keys.begin()->second;
  const bool in_ree = !host_.memory().scan(BytesView(content_key)).empty();
  const bool in_tee = !tee_.secure_memory().scan(BytesView(content_key)).empty();
  if (GetParam().level == SecurityLevel::L1) {
    EXPECT_FALSE(in_ree);
    EXPECT_TRUE(in_tee);
  } else {
    EXPECT_TRUE(in_ree);  // L3: keys necessarily in attackable memory
    EXPECT_FALSE(in_tee);
  }
  // Closing the session zeroises and unmaps the key regions.
  oec_->close_session(session);
  EXPECT_TRUE(host_.memory().scan(BytesView(content_key)).empty());
  EXPECT_TRUE(tee_.secure_memory().scan(BytesView(content_key)).empty());
}

TEST(OemCryptoConfigTest, L1RequiresTee) {
  hooking::SimProcess host("p");
  OemCryptoConfig config;
  config.level = SecurityLevel::L1;
  config.host = &host;
  config.tee = nullptr;
  EXPECT_THROW(OemCrypto oec(config), std::invalid_argument);
  config.level = SecurityLevel::L3;
  config.host = nullptr;
  EXPECT_THROW(OemCrypto oec(config), std::invalid_argument);
}

}  // namespace
}  // namespace wideleak::widevine
