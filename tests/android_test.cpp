// Android framework layer tests: Device profiles, MediaDrm, MediaCrypto,
// MediaCodec and the Surface render target.
#include <gtest/gtest.h>

#include <memory>

#include "android/device.hpp"
#include "android/media_codec.hpp"
#include "android/media_crypto.hpp"
#include "android/media_drm.hpp"
#include "hooking/hook_bus.hpp"
#include "crypto/modes.hpp"
#include "media/cenc.hpp"
#include "support/errors.hpp"
#include "widevine/license_server.hpp"
#include "widevine/provisioning_server.hpp"

namespace wideleak::android {
namespace {

class AndroidTest : public ::testing::Test {
 protected:
  AndroidTest()
      : roots_(std::make_shared<widevine::DeviceRootDatabase>()),
        provisioning_(roots_, 21, 512),
        license_(roots_, 22) {
    title_ = media::package_title(777, "Android Test Movie", {"en"}, {"en"},
                                  media::ContentPolicy{});
    license_.add_title(title_);
  }

  std::unique_ptr<Device> make_device(const DeviceSpec& spec) {
    const widevine::Keybox keybox = widevine::make_factory_keybox(spec.serial, 99);
    roots_->register_device(keybox, spec.has_tee ? widevine::SecurityLevel::L1
                                                 : widevine::SecurityLevel::L3);
    return std::make_unique<Device>(spec, keybox);
  }

  void provision(Device& device) {
    MediaDrm drm(device, kWidevineUuid);
    const Bytes request = drm.get_provision_request();
    const auto response =
        provisioning_.handle(widevine::ProvisioningRequest::deserialize(request));
    ASSERT_TRUE(response.granted) << response.deny_reason;
    ASSERT_TRUE(drm.provide_provision_response(response.serialize()));
  }

  // License a session for all the title's keys; returns the session.
  MediaDrm::SessionId license_session(MediaDrm& drm) {
    const auto session = drm.open_session();
    media::PsshBox pssh;
    for (const auto& key : title_.keys) pssh.key_ids.push_back(key.kid);
    const Bytes request = drm.get_key_request(session, pssh.to_box().serialize());
    const auto response = license_.handle(widevine::LicenseRequest::deserialize(request),
                                          widevine::permissive_revocation_policy());
    EXPECT_TRUE(response.granted) << response.deny_reason;
    EXPECT_EQ(drm.provide_key_response(session, response.serialize()),
              widevine::OemCryptoResult::Success);
    return session;
  }

  std::shared_ptr<widevine::DeviceRootDatabase> roots_;
  widevine::ProvisioningServer provisioning_;
  widevine::LicenseServer license_;
  media::PackagedTitle title_;
};

// --- Device profiles ----------------------------------------------------

TEST(DeviceSpecTest, DrmProcessNameTracksAndroidVersion) {
  EXPECT_EQ(modern_l1_spec(1).drm_process_name(), "mediadrmserver");
  EXPECT_EQ(legacy_nexus5_spec(1).drm_process_name(), "mediaserver");  // Android 6
}

TEST(DeviceSpecTest, ProfilesMatchTheStudy) {
  const DeviceSpec nexus = legacy_nexus5_spec(1);
  EXPECT_EQ(nexus.model, "Nexus 5");
  EXPECT_EQ(nexus.cdm_version, widevine::kLegacyCdm);
  EXPECT_FALSE(nexus.has_tee);
  const DeviceSpec pixel = modern_l1_spec(1);
  EXPECT_TRUE(pixel.has_tee);
  EXPECT_EQ(pixel.cdm_version, widevine::kCurrentCdm);
  EXPECT_FALSE(modern_l3_only_spec(1).has_tee);
}

TEST_F(AndroidTest, DeviceSecurityLevelFollowsTee) {
  EXPECT_EQ(make_device(modern_l1_spec(31))->security_level(), widevine::SecurityLevel::L1);
  EXPECT_EQ(make_device(legacy_nexus5_spec(32))->security_level(),
            widevine::SecurityLevel::L3);
}

TEST_F(AndroidTest, IdentityReflectsDevice) {
  auto device = make_device(legacy_nexus5_spec(33));
  const widevine::ClientIdentity id = device->identity();
  EXPECT_EQ(id.device_model, "Nexus 5");
  EXPECT_EQ(id.cdm_version, widevine::kLegacyCdm);
  EXPECT_EQ(id.level, widevine::SecurityLevel::L3);
}

// --- MediaDrm --------------------------------------------------------------

TEST_F(AndroidTest, RejectsUnknownDrmScheme) {
  auto device = make_device(modern_l1_spec(34));
  EXPECT_THROW(MediaDrm(*device, "00000000-0000-0000-0000-000000000000"), StateError);
}

TEST_F(AndroidTest, ProvisioningFlow) {
  auto device = make_device(modern_l1_spec(35));
  MediaDrm drm(*device, kWidevineUuid);
  EXPECT_FALSE(drm.is_provisioned());
  provision(*device);
  EXPECT_TRUE(MediaDrm(*device, kWidevineUuid).is_provisioned());
}

TEST_F(AndroidTest, DeniedProvisioningLeavesDeviceUnprovisioned) {
  auto device = make_device(legacy_nexus5_spec(36));
  MediaDrm drm(*device, kWidevineUuid);
  (void)drm.get_provision_request();
  widevine::ProvisioningResponse denied;
  denied.deny_reason = "device revoked";
  EXPECT_FALSE(drm.provide_provision_response(denied.serialize()));
  EXPECT_FALSE(drm.is_provisioned());
}

TEST_F(AndroidTest, GetKeyRequestRejectsBadInitData) {
  auto device = make_device(modern_l1_spec(37));
  provision(*device);
  MediaDrm drm(*device, kWidevineUuid);
  const auto session = drm.open_session();
  EXPECT_THROW(drm.get_key_request(session, to_bytes("not a pssh box")), ParseError);
  media::Box mdat{.fourcc = "mdat", .payload = {}, .children = {}};
  EXPECT_THROW(drm.get_key_request(session, mdat.serialize()), ParseError);
}

TEST_F(AndroidTest, LicenseFlowLoadsKeys) {
  auto device = make_device(modern_l1_spec(38));
  provision(*device);
  MediaDrm drm(*device, kWidevineUuid);
  const auto session = license_session(drm);
  EXPECT_EQ(drm.loaded_key_ids(session).size(), title_.keys.size());
  drm.close_session(session);
}

TEST_F(AndroidTest, CallsAreVisibleOnTheDrmProcessBus) {
  auto device = make_device(modern_l1_spec(39));
  hooking::TraceSession trace(device->drm_process().bus());
  provision(*device);
  MediaDrm drm(*device, kWidevineUuid);
  const auto session = license_session(drm);
  drm.close_session(session);
  EXPECT_NE(trace.trace().first("MediaDrm.getKeyRequest"), nullptr);
  EXPECT_NE(trace.trace().first("MediaDrm.provideKeyResponse"), nullptr);
  EXPECT_NE(trace.trace().first("MediaDrm.getProvisionRequest"), nullptr);
  EXPECT_TRUE(trace.trace().touched_module(kMediaJniModule));
}

// --- MediaCrypto / MediaCodec ---------------------------------------------------

TEST_F(AndroidTest, SecureDecodeRendersFrames) {
  auto device = make_device(modern_l1_spec(40));
  provision(*device);
  MediaDrm drm(*device, kWidevineUuid);
  const auto session = license_session(drm);

  const auto* rep = title_.mpd.of_type(media::TrackType::Video).back();  // 1080p
  const auto track =
      media::PackagedTrack::from_file(BytesView(title_.files.at(rep->base_url)));
  ASSERT_TRUE(track.encrypted);

  MediaCrypto crypto(drm, session);
  Surface surface;
  MediaCodec codec(&crypto, surface);
  for (std::size_t i = 0; i < track.samples.size(); ++i) {
    EXPECT_TRUE(codec.queue_secure_input_buffer(track.key_id, BytesView(track.samples[i]),
                                                track.senc.entries[i]));
  }
  EXPECT_EQ(surface.frames_rendered(), track.samples.size());
  EXPECT_EQ(surface.video_resolution(), (media::Resolution{1920, 1080}));
  drm.close_session(session);
}

TEST_F(AndroidTest, ClearDecodeWithoutCrypto) {
  media::ContentPolicy clear_policy{.encrypt_video = false,
                                    .encrypt_audio = false,
                                    .encrypt_subtitles = false,
                                    .key_usage = media::KeyUsagePolicy::Minimum};
  const auto clear_title = media::package_title(778, "Clear Movie", {"en"}, {}, clear_policy);
  const auto* rep = clear_title.mpd.of_type(media::TrackType::Video)[0];
  const auto track =
      media::PackagedTrack::from_file(BytesView(clear_title.files.at(rep->base_url)));
  Surface surface;
  MediaCodec codec(nullptr, surface);
  for (const Bytes& sample : track.samples) {
    EXPECT_TRUE(codec.queue_input_buffer(sample));
  }
  EXPECT_GT(surface.frames_rendered(), 0u);
}

TEST_F(AndroidTest, SecureBufferWithoutCryptoThrows) {
  Surface surface;
  MediaCodec codec(nullptr, surface);
  media::SampleEncryptionEntry entry;
  EXPECT_THROW(codec.queue_secure_input_buffer(Bytes(16, 0), to_bytes("x"), entry),
               StateError);
}

TEST_F(AndroidTest, DecryptWithUnloadedKeyThrows) {
  auto device = make_device(modern_l1_spec(41));
  provision(*device);
  MediaDrm drm(*device, kWidevineUuid);
  const auto session = drm.open_session();  // no license
  MediaCrypto crypto(drm, session);
  media::SampleEncryptionEntry entry;
  entry.iv = Bytes(8, 0);
  EXPECT_THROW(crypto.decrypt_sample(Bytes(16, 1), to_bytes("ciphertext"), entry), StateError);
  drm.close_session(session);
}

TEST_F(AndroidTest, MultiSubsampleSampleDecryptsCorrectly) {
  // Hand-build a two-subsample sample and check keystream continuity.
  auto device = make_device(modern_l1_spec(42));
  provision(*device);
  MediaDrm drm(*device, kWidevineUuid);
  const auto session = license_session(drm);

  const media::ContentKey& key = title_.keys[0];
  Rng rng(5);
  const Bytes plaintext = rng.next_bytes(100);
  // Layout: 10 clear | 40 protected | 6 clear | 44 protected.
  media::SampleEncryptionEntry entry;
  entry.iv = rng.next_bytes(8);
  entry.subsamples.push_back({10, 40});
  entry.subsamples.push_back({6, 44});

  Bytes full_iv = entry.iv;
  full_iv.resize(16, 0);
  const crypto::Aes aes(key.key);
  crypto::AesCtrStream stream(aes, full_iv);
  Bytes sample;
  sample.insert(sample.end(), plaintext.begin(), plaintext.begin() + 10);
  const Bytes ct1 = stream.process(BytesView(plaintext.data() + 10, 40));
  sample.insert(sample.end(), ct1.begin(), ct1.end());
  sample.insert(sample.end(), plaintext.begin() + 50, plaintext.begin() + 56);
  const Bytes ct2 = stream.process(BytesView(plaintext.data() + 56, 44));
  sample.insert(sample.end(), ct2.begin(), ct2.end());

  MediaCrypto crypto(drm, session);
  EXPECT_EQ(crypto.decrypt_sample(key.kid, sample, entry), plaintext);
  drm.close_session(session);
}

TEST(SurfaceTest, TracksFirstVideoResolutionOnly) {
  Surface surface;
  media::Frame audio;
  audio.type = media::TrackType::Audio;
  surface.render(audio);
  media::Frame video;
  video.type = media::TrackType::Video;
  video.resolution = {960, 540};
  surface.render(video);
  media::Frame video2;
  video2.type = media::TrackType::Video;
  video2.resolution = {1920, 1080};
  surface.render(video2);
  EXPECT_EQ(surface.frames_rendered(), 3u);
  EXPECT_EQ(surface.video_resolution(), (media::Resolution{960, 540}));
}

}  // namespace
}  // namespace wideleak::android
