// RSA tests: key generation, OAEP, PKCS#1 v1.5 and PSS — roundtrips,
// tamper detection, serialization, parameterized over key sizes.
#include <gtest/gtest.h>

#include <map>

#include "crypto/rsa.hpp"
#include "support/errors.hpp"

namespace wideleak::crypto {
namespace {

// Key generation is the expensive part; share keys across tests.
class RsaTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  static RsaKeyPair& key_for(std::size_t bits) {
    static std::map<std::size_t, RsaKeyPair> cache;
    auto it = cache.find(bits);
    if (it == cache.end()) {
      Rng rng(0x5e11 + bits);
      it = cache.emplace(bits, rsa_generate(rng, bits)).first;
    }
    return it->second;
  }

  RsaKeyPair& key() { return key_for(GetParam()); }
  Rng rng_{GetParam() * 17 + 1};
};

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaTest, ::testing::Values(512, 768, 1024));

TEST_P(RsaTest, GeneratedKeyHasRequestedModulusSize) {
  EXPECT_EQ(key().pub.n.bit_length(), GetParam());
  EXPECT_EQ(key().pub.e, BigInt(65537));
  EXPECT_EQ(key().p * key().q, key().pub.n);
}

TEST_P(RsaTest, EdInverseModPhi) {
  const BigInt phi = (key().p - BigInt(1)) * (key().q - BigInt(1));
  EXPECT_EQ((key().pub.e * key().d) % phi, BigInt(1));
}

TEST_P(RsaTest, OaepRoundTrip) {
  for (const std::size_t len : {0, 1, 16}) {
    const Bytes message = rng_.next_bytes(static_cast<std::size_t>(len));
    const Bytes ct = rsa_oaep_encrypt(key().pub, rng_, message);
    EXPECT_EQ(ct.size(), key().pub.modulus_bytes());
    EXPECT_EQ(rsa_oaep_decrypt(key(), ct), message);
  }
}

TEST_P(RsaTest, OaepIsRandomized) {
  const Bytes message = rng_.next_bytes(8);
  const Bytes c1 = rsa_oaep_encrypt(key().pub, rng_, message);
  const Bytes c2 = rsa_oaep_encrypt(key().pub, rng_, message);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(rsa_oaep_decrypt(key(), c1), rsa_oaep_decrypt(key(), c2));
}

TEST_P(RsaTest, OaepRejectsTamperedCiphertext) {
  Bytes ct = rsa_oaep_encrypt(key().pub, rng_, rng_.next_bytes(8));
  ct[ct.size() / 2] ^= 1;
  EXPECT_THROW(rsa_oaep_decrypt(key(), ct), CryptoError);
}

TEST_P(RsaTest, OaepRejectsOversizeMessage) {
  const std::size_t max_len = key().pub.modulus_bytes() - 2 * 20 - 2;
  EXPECT_NO_THROW(rsa_oaep_encrypt(key().pub, rng_, rng_.next_bytes(max_len)));
  EXPECT_THROW(rsa_oaep_encrypt(key().pub, rng_, rng_.next_bytes(max_len + 1)), CryptoError);
}

TEST_P(RsaTest, OaepWrongKeyFails) {
  RsaKeyPair& other = key_for(GetParam() == 512 ? 768 : 512);
  const Bytes ct = rsa_oaep_encrypt(key().pub, rng_, rng_.next_bytes(8));
  EXPECT_THROW(rsa_oaep_decrypt(other, ct), CryptoError);
}

TEST_P(RsaTest, Pkcs1SignVerify) {
  const Bytes message = rng_.next_bytes(100);
  const Bytes sig = rsa_pkcs1_sign(key(), message);
  EXPECT_EQ(sig.size(), key().pub.modulus_bytes());
  EXPECT_TRUE(rsa_pkcs1_verify(key().pub, message, sig));
}

TEST_P(RsaTest, Pkcs1RejectsTamperedMessageOrSignature) {
  Bytes message = rng_.next_bytes(100);
  Bytes sig = rsa_pkcs1_sign(key(), message);
  sig[10] ^= 1;
  EXPECT_FALSE(rsa_pkcs1_verify(key().pub, message, sig));
  sig[10] ^= 1;
  message[0] ^= 1;
  EXPECT_FALSE(rsa_pkcs1_verify(key().pub, message, sig));
  EXPECT_FALSE(rsa_pkcs1_verify(key().pub, message, Bytes(sig.begin(), sig.end() - 1)));
}

TEST_P(RsaTest, Pkcs1IsDeterministic) {
  const Bytes message = rng_.next_bytes(64);
  EXPECT_EQ(rsa_pkcs1_sign(key(), message), rsa_pkcs1_sign(key(), message));
}

TEST_P(RsaTest, PssSignVerify) {
  const Bytes message = rng_.next_bytes(200);
  const Bytes sig = rsa_pss_sign(key(), rng_, message);
  EXPECT_TRUE(rsa_pss_verify(key().pub, message, sig));
}

TEST_P(RsaTest, PssIsRandomizedButBothVerify) {
  const Bytes message = rng_.next_bytes(64);
  const Bytes s1 = rsa_pss_sign(key(), rng_, message);
  const Bytes s2 = rsa_pss_sign(key(), rng_, message);
  EXPECT_NE(s1, s2);
  EXPECT_TRUE(rsa_pss_verify(key().pub, message, s1));
  EXPECT_TRUE(rsa_pss_verify(key().pub, message, s2));
}

TEST_P(RsaTest, PssRejectsTampering) {
  Bytes message = rng_.next_bytes(64);
  Bytes sig = rsa_pss_sign(key(), rng_, message);
  sig[5] ^= 1;
  EXPECT_FALSE(rsa_pss_verify(key().pub, message, sig));
  sig[5] ^= 1;
  message[5] ^= 1;
  EXPECT_FALSE(rsa_pss_verify(key().pub, message, sig));
}

TEST_P(RsaTest, PssWrongKeyFails) {
  RsaKeyPair& other = key_for(GetParam() == 512 ? 768 : 512);
  const Bytes message = rng_.next_bytes(64);
  const Bytes sig = rsa_pss_sign(key(), rng_, message);
  EXPECT_FALSE(rsa_pss_verify(other.pub, message, sig));
}

TEST_P(RsaTest, PublicKeySerializationRoundTrip) {
  const Bytes serialized = key().pub.serialize();
  const RsaPublicKey restored = RsaPublicKey::deserialize(serialized);
  EXPECT_EQ(restored, key().pub);
  EXPECT_EQ(restored.fingerprint(), key().pub.fingerprint());
}

TEST_P(RsaTest, KeyPairSerializationRoundTrip) {
  const RsaKeyPair restored = RsaKeyPair::deserialize(key().serialize());
  EXPECT_EQ(restored.pub, key().pub);
  EXPECT_EQ(restored.d, key().d);
  // The restored private key must actually work.
  Rng rng(99);
  const Bytes ct = rsa_oaep_encrypt(key().pub, rng, to_bytes("hello"));
  EXPECT_EQ(to_string(BytesView(rsa_oaep_decrypt(restored, ct))), "hello");
}

TEST_P(RsaTest, FingerprintIsKeySensitive) {
  RsaKeyPair& other = key_for(GetParam() == 512 ? 768 : 512);
  EXPECT_NE(key().pub.fingerprint(), other.pub.fingerprint());
}

// --- MGF1 known answer (from public test vectors) ---------------------------

TEST(Mgf1, OutputLengthAndDeterminism) {
  const Bytes seed = hex_decode("0123456789abcdef");
  EXPECT_EQ(mgf1_sha1(seed, 4).size(), 4u);
  EXPECT_EQ(mgf1_sha1(seed, 20).size(), 20u);
  EXPECT_EQ(mgf1_sha1(seed, 47).size(), 47u);
  EXPECT_EQ(mgf1_sha1(seed, 47), mgf1_sha1(seed, 47));
  // Prefix property.
  const Bytes long_mask = mgf1_sha256(seed, 64);
  EXPECT_EQ(Bytes(long_mask.begin(), long_mask.begin() + 32), mgf1_sha256(seed, 32));
}

TEST(Rsa, GenerateRejectsBadSizes) {
  Rng rng(1);
  EXPECT_THROW(rsa_generate(rng, 100), std::invalid_argument);  // < 128
  EXPECT_THROW(rsa_generate(rng, 513), std::invalid_argument);  // odd
}

}  // namespace
}  // namespace wideleak::crypto
