// widevine::DrmService — the multi-tenant session table: striped-lock
// sharding, LRU eviction/reclaim, per-app admission control, token-bucket
// rate limiting on SimClock, and the bit-identity of campaign runs routed
// through the shared service.
//
// The concurrency tests hammer one service from several threads so the CI
// tsan job checks the striped locks' happens-before edges.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "crypto/hmac.hpp"
#include "ott/catalog.hpp"
#include "support/sim_clock.hpp"
#include "widevine/drm_service.hpp"
#include "widevine/key_ladder.hpp"
#include "widevine/keybox.hpp"

namespace wideleak::widevine {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

class DrmServiceTest : public ::testing::Test {
 protected:
  DrmServiceTest()
      : roots_(std::make_shared<DeviceRootDatabase>()),
        license_(std::make_shared<LicenseServer>(roots_, 21)),
        provisioning_(std::make_shared<ProvisioningServer>(roots_, 22, 512)) {
    kid_ = Bytes(16, 0x4B);
    license_->add_generic_key(kid_, SecretBytes(Bytes(16, 0x33)));
  }

  /// A service over the shared servers; AppId == index into `apps`.
  std::unique_ptr<DrmService> make_service(const DrmServiceConfig& config,
                                           std::size_t apps = 2,
                                           support::SimClock* clock = nullptr) {
    auto service = std::make_unique<DrmService>(license_, provisioning_, config, clock);
    for (std::size_t a = 0; a < apps; ++a) {
      EXPECT_EQ(service->register_app("app-" + std::to_string(a)), a);
    }
    return service;
  }

  /// Register a device and build a valid keybox-signed license request,
  /// exactly what a CDM would emit (the servers test exercises the full
  /// CDM exchange; here we only need the server-visible wire form).
  LicenseRequest request_for(const std::string& serial) {
    const Keybox keybox = make_factory_keybox(serial, 7);
    roots_->register_device(keybox, SecurityLevel::L1);
    LicenseRequest request;
    request.client.stable_id = keybox.stable_id();
    request.client.device_model = "svc-test";
    request.client.cdm_version = kCurrentCdm;
    request.client.level = SecurityLevel::L1;
    request.nonce = Bytes(8, 0x5A);
    request.key_ids = {kid_};
    request.scheme = SignatureScheme::KeyboxCmac;
    const Bytes body = request.body();
    const SessionKeys keys = derive_session_keys(keybox.device_key(), body, body);
    request.signature = crypto::hmac_sha256(keys.mac_key_client, body);
    return request;
  }

  std::shared_ptr<DeviceRootDatabase> roots_;
  std::shared_ptr<LicenseServer> license_;
  std::shared_ptr<ProvisioningServer> provisioning_;
  RevocationPolicy policy_ = permissive_revocation_policy();
  media::KeyId kid_;
};

// --- shard layout ------------------------------------------------------------

TEST_F(DrmServiceTest, ShardCountRoundsUpToPowerOfTwo) {
  DrmServiceConfig config;
  config.shard_count = 5;
  EXPECT_EQ(make_service(config)->shard_count(), 8u);
  config.shard_count = 0;
  EXPECT_EQ(make_service(config)->shard_count(), 1u);
  config.shard_count = 64;
  EXPECT_EQ(make_service(config)->shard_count(), 64u);
}

TEST_F(DrmServiceTest, SessionIdsAreDeterministicAndTenantScoped) {
  DrmServiceConfig config;
  config.seed = 0xABCD;
  const auto service = make_service(config);
  const Bytes id = to_bytes("stable-client");
  EXPECT_EQ(service->session_id_for(0, id), service->session_id_for(0, id));
  // Different tenants and different services (seeds) get distinct spaces.
  EXPECT_NE(service->session_id_for(0, id), service->session_id_for(1, id));
  config.seed = 0xEF01;
  EXPECT_NE(make_service(config)->session_id_for(0, id), service->session_id_for(0, id));
}

// --- LRU eviction ------------------------------------------------------------

TEST_F(DrmServiceTest, LruEvictionReclaimsLeastRecentlyUsed) {
  DrmServiceConfig config;
  config.shard_count = 1;  // one stripe -> global LRU order
  config.max_sessions = 3;
  const auto service = make_service(config, 1);

  std::vector<ServiceSessionId> ids;
  for (int c = 0; c < 3; ++c) {
    const Bytes stable = to_bytes("client-" + std::to_string(c));
    ASSERT_EQ(service->open_session(0, stable, c), SessionAdmission::Opened);
    ids.push_back(service->session_id_for(0, stable));
  }
  // Touch the oldest so the second-oldest becomes the LRU victim.
  EXPECT_EQ(service->open_session(0, to_bytes("client-0"), 10), SessionAdmission::Existing);
  EXPECT_EQ(service->open_session(0, to_bytes("client-3"), 11), SessionAdmission::Opened);

  EXPECT_TRUE(service->has_session(ids[0]));   // touched: survived
  EXPECT_FALSE(service->has_session(ids[1]));  // LRU: reclaimed
  EXPECT_TRUE(service->has_session(ids[2]));

  const DrmServiceStats stats = service->stats();
  EXPECT_EQ(stats.sessions_opened, 4u);
  EXPECT_EQ(stats.sessions_evicted, 1u);
  EXPECT_EQ(stats.live_sessions, 3u);
}

TEST_F(DrmServiceTest, EvictionOrderIsDeterministic) {
  // The same open/touch script against two fresh services must reclaim the
  // same sessions — eviction is a pure function of the request sequence.
  const auto run_script = [&](DrmService& service) {
    std::vector<bool> live;
    for (int round = 0; round < 3; ++round) {
      for (int c = 0; c < 24; ++c) {
        service.open_session(0, to_bytes("client-" + std::to_string((c * 7 + round) % 24)),
                             static_cast<std::uint64_t>(round * 100 + c));
      }
    }
    for (int c = 0; c < 24; ++c) {
      live.push_back(
          service.has_session(service.session_id_for(0, to_bytes("client-" + std::to_string(c)))));
    }
    return live;
  };
  DrmServiceConfig config;
  config.shard_count = 4;
  config.max_sessions = 8;
  const auto a = make_service(config, 1);
  const auto b = make_service(config, 1);
  EXPECT_EQ(run_script(*a), run_script(*b));
  EXPECT_EQ(a->stats().sessions_evicted, b->stats().sessions_evicted);
  EXPECT_GT(a->stats().sessions_evicted, 0u);
  EXPECT_LE(a->stats().live_sessions, 8u);
}

// --- admission control -------------------------------------------------------

TEST_F(DrmServiceTest, AdmissionControlRejectsOverQuotaAndAccounts) {
  DrmServiceConfig config;
  config.max_sessions_per_app = 2;
  const auto service = make_service(config);

  EXPECT_EQ(service->open_session(0, to_bytes("a"), 0), SessionAdmission::Opened);
  EXPECT_EQ(service->open_session(0, to_bytes("b"), 1), SessionAdmission::Opened);
  EXPECT_EQ(service->open_session(0, to_bytes("c"), 2), SessionAdmission::Rejected);
  // Quotas are per tenant: the other app is unaffected.
  EXPECT_EQ(service->open_session(1, to_bytes("c"), 3), SessionAdmission::Opened);
  // Touching an existing session never re-runs admission.
  EXPECT_EQ(service->open_session(0, to_bytes("a"), 4), SessionAdmission::Existing);

  DrmServiceStats stats = service->stats();
  EXPECT_EQ(stats.admission_rejected, 1u);
  EXPECT_EQ(stats.live_sessions, 3u);

  // Closing a session frees the slot.
  EXPECT_TRUE(service->close_session(service->session_id_for(0, to_bytes("a"))));
  EXPECT_EQ(service->open_session(0, to_bytes("c"), 5), SessionAdmission::Opened);
  stats = service->stats();
  EXPECT_EQ(stats.sessions_closed, 1u);
  EXPECT_EQ(stats.admission_rejected, 1u);
}

TEST_F(DrmServiceTest, AdmissionRejectionDeniesLicenseRequests) {
  DrmServiceConfig config;
  config.max_sessions_per_app = 1;
  const auto service = make_service(config, 1);
  const LicenseRequest first = request_for("svc-adm-0");
  const LicenseRequest second = request_for("svc-adm-1");

  EXPECT_TRUE(service->handle_license(0, first, policy_, 0).granted);
  const LicenseResponse denied = service->handle_license(0, second, policy_, 1);
  EXPECT_FALSE(denied.granted);
  EXPECT_EQ(denied.deny_reason, "session quota exceeded");
  // The underlying license server never saw the rejected request.
  EXPECT_EQ(license_->stats().requests, 1u);
}

// --- rate limiting -----------------------------------------------------------

TEST_F(DrmServiceTest, TokenBucketRefillsOnSimClock) {
  DrmServiceConfig config;
  config.bucket_capacity = 2;
  config.tokens_per_tick = 1;
  support::SimClock clock;
  const auto service = make_service(config, 1, &clock);
  const LicenseRequest request = request_for("svc-rate-0");

  // The bucket starts full: capacity 2, then empty.
  EXPECT_TRUE(service->handle_license(0, request, policy_).granted);
  EXPECT_TRUE(service->handle_license(0, request, policy_).granted);
  const LicenseResponse limited = service->handle_license(0, request, policy_);
  EXPECT_FALSE(limited.granted);
  EXPECT_EQ(limited.deny_reason, "rate limited");

  // One tick earns one token; two ticks cap out at two.
  clock.advance(1);
  EXPECT_TRUE(service->handle_license(0, request, policy_).granted);
  EXPECT_FALSE(service->handle_license(0, request, policy_).granted);
  clock.advance(5);  // refill is capped at bucket_capacity
  EXPECT_TRUE(service->handle_license(0, request, policy_).granted);
  EXPECT_TRUE(service->handle_license(0, request, policy_).granted);
  EXPECT_FALSE(service->handle_license(0, request, policy_).granted);

  EXPECT_EQ(service->stats().rate_limited, 3u);
  // Rate-limited requests never reach the license server.
  EXPECT_EQ(license_->stats().requests, 5u);
}

// --- request path ------------------------------------------------------------

TEST_F(DrmServiceTest, LicensePathDelegatesAndTracksSessions) {
  const auto service = make_service({});
  const LicenseRequest request = request_for("svc-lic-0");

  const LicenseResponse response = service->handle_license(0, request, policy_, 5);
  ASSERT_TRUE(response.granted) << response.deny_reason;
  EXPECT_EQ(response.keys.size(), 1u);

  // An implicit session per (app, client); repeat requests touch it.
  DrmServiceStats stats = service->stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.license_requests, 1u);
  EXPECT_TRUE(service->handle_license(0, request, policy_, 6).granted);
  stats = service->stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.license_requests, 2u);
  EXPECT_EQ(stats.live_sessions, 1u);
  EXPECT_TRUE(service->has_session(service->session_id_for(0, request.client.stable_id)));
}

TEST_F(DrmServiceTest, ProvisioningPathCountsWithoutSessions) {
  const auto service = make_service({});
  // An unauthenticated provisioning probe: denied by the server, but the
  // service front door still accounts for the request.
  ProvisioningRequest request;
  request.client.stable_id = to_bytes("unknown-device");
  request.nonce = Bytes(8, 0x01);
  request.signature = Bytes(32, 0x02);
  const ProvisioningResponse response = service->handle_provision(0, request, 0);
  EXPECT_FALSE(response.granted);
  const DrmServiceStats stats = service->stats();
  EXPECT_EQ(stats.provisioning_requests, 1u);
  EXPECT_EQ(stats.sessions_opened, 0u);
  EXPECT_EQ(provisioning_->stats().requests, 1u);
}

// --- concurrency -------------------------------------------------------------

TEST_F(DrmServiceTest, ConcurrentOpenCloseEvictKeepsAccountsCoherent) {
  DrmServiceConfig config;
  config.shard_count = 8;
  config.max_sessions = 64;  // tight: forces reclaim traffic under contention
  const std::size_t threads = 4;
  const auto service = make_service(config, threads);
  const std::size_t per_thread = kUnderTsan ? 400 : 2000;

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        const Bytes stable = to_bytes("t" + std::to_string(t) + "-c" + std::to_string(i % 48));
        service->open_session(static_cast<AppId>(t), stable, i);
        if (i % 3 == 0) {
          service->close_session(service->session_id_for(static_cast<AppId>(t), stable));
        }
      }
    });
  }
  for (auto& t : pool) t.join();

  const DrmServiceStats stats = service->stats();
  // Conservation: every opened session is live, closed, or reclaimed.
  EXPECT_EQ(stats.sessions_opened, stats.live_sessions + stats.sessions_closed +
                                       stats.sessions_evicted);
  EXPECT_LE(stats.live_sessions, 64u);
  EXPECT_GT(stats.sessions_evicted, 0u);
}

TEST_F(DrmServiceTest, ConcurrentLicenseTrafficAllGranted) {
  const std::size_t threads = 4;
  const auto service = make_service({}, threads);
  // Pre-build valid requests outside the threads (registration is not
  // thread-safe; serving is).
  std::vector<std::vector<LicenseRequest>> requests(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    for (int c = 0; c < 8; ++c) {
      requests[t].push_back(
          request_for("svc-mt-t" + std::to_string(t) + "-c" + std::to_string(c)));
    }
  }
  const std::size_t per_thread = kUnderTsan ? 100 : 500;
  std::vector<std::size_t> granted(threads, 0);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        const auto response = service->handle_license(
            static_cast<AppId>(t), requests[t][i % requests[t].size()], policy_, i);
        granted[t] += response.granted ? 1 : 0;
      }
    });
  }
  for (auto& t : pool) t.join();

  for (std::size_t t = 0; t < threads; ++t) EXPECT_EQ(granted[t], per_thread) << t;
  const DrmServiceStats stats = service->stats();
  EXPECT_EQ(stats.license_requests, threads * per_thread);
  EXPECT_EQ(stats.live_sessions, threads * 8u);
  const LicenseServerStats server = license_->stats();
  EXPECT_EQ(server.requests, threads * per_thread);
  EXPECT_EQ(server.granted, threads * per_thread);
}

// --- campaign bit-identity through the shared service ------------------------

TEST(DrmServiceCampaignTest, ReportsBitIdenticalAt1And8WorkersThroughService) {
  // Every cell's license/provisioning traffic now flows through its
  // private DrmService instance; the campaign report must not notice.
  const auto spec_for = [](std::size_t workers) {
    core::CampaignSpec spec;
    std::vector<const char*> names = {"Netflix", "Showtime"};
    if (!kUnderTsan) names.push_back("Amazon Prime Video");
    for (const char* name : names) {
      const auto app = ott::find_app(name);
      EXPECT_TRUE(app.has_value()) << name;
      spec.apps.push_back(*app);
    }
    spec.workers = workers;
    spec.attempt_rip = false;
    return spec;
  };
  const core::CampaignResult serial = core::CampaignRunner(spec_for(1)).run();
  const core::CampaignResult parallel = core::CampaignRunner(spec_for(8)).run();

  EXPECT_EQ(core::render_campaign_report(serial), core::render_campaign_report(parallel));
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].stats.drm_sessions, parallel.cells[i].stats.drm_sessions) << i;
    EXPECT_EQ(serial.cells[i].stats.drm_evictions, parallel.cells[i].stats.drm_evictions)
        << i;
    // The wiring uses the default (unbounded) capacity: nothing is evicted,
    // and every cell that reached its license exchange opened sessions.
    EXPECT_EQ(serial.cells[i].stats.drm_evictions, 0u) << i;
  }
}

}  // namespace
}  // namespace wideleak::widevine
