// The pipelined campaign scheduler: TimerWheel ordering contracts, TaskQueue
// fence semantics, bit-identity of campaign reports across scheduler modes,
// worker counts and pacing, and the overlap proof — another cell's stage
// provably executing inside an injected latency window.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "ott/catalog.hpp"
#include "support/timer_wheel.hpp"

namespace wideleak::core {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

// ---------------------------------------------------------------------------
// TimerWheel: the (deadline, seq) release contract.

TEST(TimerWheelTest, SameTickEntriesReleaseInScheduleOrder) {
  support::TimerWheel wheel;
  wheel.schedule(10, 100);
  wheel.schedule(10, 200);
  wheel.schedule(10, 300);
  wheel.schedule(9, 900);  // earlier deadline beats every same-tick entry

  const auto fired = wheel.advance_to(10);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_EQ(fired[0].token, 900u);
  EXPECT_EQ(fired[1].token, 100u);
  EXPECT_EQ(fired[2].token, 200u);
  EXPECT_EQ(fired[3].token, 300u);
  // Same-tick tiebreak is the schedule() sequence, monotone by construction.
  EXPECT_LT(fired[1].seq, fired[2].seq);
  EXPECT_LT(fired[2].seq, fired[3].seq);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, EntriesCascadeAcrossLevelEpochs) {
  // Deadlines spanning level 0 (<64), level 1 (<64^2) and level 2 (<64^3),
  // scheduled out of order; each fires exactly when the wheel reaches it.
  support::TimerWheel wheel;
  wheel.schedule(64 * 64 + 7, 3);
  wheel.schedule(3, 0);
  wheel.schedule(65, 2);
  wheel.schedule(64, 1);

  auto fired = wheel.advance_to(63);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].token, 0u);

  fired = wheel.advance_to(64);  // the first level-1 cascade boundary
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].token, 1u);

  fired = wheel.advance_to(70);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].token, 2u);

  EXPECT_EQ(wheel.next_deadline(), std::uint64_t{64 * 64 + 7});
  fired = wheel.advance_to(64 * 64 + 7);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].token, 3u);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_FALSE(wheel.next_deadline().has_value());
}

TEST(TimerWheelTest, CancelledEntriesNeverFire) {
  support::TimerWheel wheel;
  const std::uint64_t a = wheel.schedule(5, 1);
  const std::uint64_t b = wheel.schedule(5, 2);
  EXPECT_TRUE(wheel.cancel(a));
  EXPECT_FALSE(wheel.cancel(a));  // already cancelled
  EXPECT_EQ(wheel.pending(), 1u);

  const auto fired = wheel.advance_to(6);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].token, 2u);
  EXPECT_FALSE(wheel.cancel(b));  // already expired
  EXPECT_EQ(wheel.scheduled_total(), 2u);
  EXPECT_EQ(wheel.expired_total(), 1u);
}

TEST(TimerWheelTest, CancelledWaitAndCascadeOnTheSameTickChargeOnce) {
  // Regression: a cancelled entry whose deadline coincides with a cascade
  // tick must stay a tombstone on every path — the slot drain, the cascade
  // walk and any slot re-queue must all drop it, so the cancellation is
  // charged exactly once (cancel() already decremented pending_).
  support::TimerWheel wheel;
  const std::uint64_t doomed = wheel.schedule(64, 1);  // parks beyond level 0
  wheel.schedule(64, 2);
  EXPECT_TRUE(wheel.cancel(doomed));
  EXPECT_EQ(wheel.pending(), 1u);

  // Tick 64 is both the level-1 cascade boundary and the deadline.
  const auto fired = wheel.advance_to(64);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].token, 2u);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.expired_total(), 1u);
  EXPECT_FALSE(wheel.cancel(doomed));  // no live entry left to charge

  // No tombstone lingers into later epochs of the same slots.
  EXPECT_TRUE(wheel.advance_to(64 * 3).empty());
  EXPECT_FALSE(wheel.next_deadline().has_value());
}

TEST(TimerWheelTest, PastDeadlinesFireOnNextAdvanceAheadOfLater) {
  support::TimerWheel wheel;
  wheel.advance_to(100);
  wheel.schedule(50, 1);   // already in the past when scheduled
  wheel.schedule(101, 2);

  const auto fired = wheel.advance_to(101);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].token, 1u);  // (deadline 50) sorts ahead of (deadline 101)
  EXPECT_EQ(fired[1].token, 2u);
}

TEST(TimerWheelTest, DeadlinesBeyondTheHorizonStillFire) {
  // 64^4 is the wheel's native horizon; beyond it entries park in overflow
  // and re-enter on the top-level cascade.
  constexpr std::uint64_t kHorizon = 64ull * 64 * 64 * 64;
  support::TimerWheel wheel;
  wheel.schedule(kHorizon + 5, 7);
  EXPECT_EQ(wheel.next_deadline(), kHorizon + 5);

  auto fired = wheel.advance_to(kHorizon + 4);
  EXPECT_TRUE(fired.empty());
  fired = wheel.advance_to(kHorizon + 5);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].token, 7u);
}

// ---------------------------------------------------------------------------
// TaskQueue: fence semantics and deterministic release order.

TEST(TaskQueueTest, FenceReleasesWaitersInSubmissionOrder) {
  TaskQueue queue(1, support::PacingPolicy{}, /*record_trace=*/true);
  const FenceId gate = queue.make_fence(1);
  const FenceId done = queue.make_fence(2);

  std::vector<std::string> order;
  queue.submit([&] { order.push_back("b"); }, gate, done, 1, "b");
  queue.submit([&] { order.push_back("c"); }, gate, done, 2, "c");
  queue.submit([&] { order.push_back("producer"); }, std::nullopt, gate, 0, "producer");
  queue.drain(done);

  // b and c parked on the gate; the producer (submitted last but unblocked)
  // ran first, and the released waiters entered the ready set in submission
  // order — never in signal order or host-timing order.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "producer");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "c");

  const PipelineStats stats = queue.stats();
  EXPECT_EQ(stats.tasks_executed, 3u);
  EXPECT_EQ(stats.fence_stalls, 2u);
  EXPECT_EQ(queue.task_count(), 3u);

  // The trace carries the same total order.
  std::vector<std::string> begins;
  for (const TraceEvent& event : queue.trace()) {
    if (event.kind == TraceEvent::Kind::TaskBegin) begins.push_back(event.label);
  }
  EXPECT_EQ(begins, (std::vector<std::string>{"producer", "b", "c"}));
}

TEST(TaskQueueTest, PreSignaledFenceNeverParks) {
  TaskQueue queue(1, support::PacingPolicy{});
  const FenceId pre = queue.make_fence(0);  // producers == 0: born signaled
  const FenceId done = queue.make_fence(1);

  bool ran = false;
  queue.submit([&] { ran = true; }, pre, done, 0, "eager");
  queue.drain(done);

  EXPECT_TRUE(ran);
  EXPECT_EQ(queue.stats().fence_stalls, 0u);
}

TEST(TaskQueueTest, UnpacedWaitsAreTelemetryOnly) {
  TaskQueue queue(1, support::PacingPolicy{});  // pacing disabled
  const FenceId done = queue.make_fence(1);
  queue.submit(
      [&] {
        queue.wait_ticks(0, 17);
        queue.wait_ticks(0, 3);
      },
      std::nullopt, done, 0, "waiter");
  queue.drain(done);

  const PipelineStats stats = queue.stats();
  EXPECT_EQ(stats.waits, 2u);
  EXPECT_EQ(stats.wait_ticks, 20u);
  // No pacing: nothing parks, nothing matures on the wheel.
  EXPECT_EQ(stats.timer_wakeups, 0u);
  EXPECT_EQ(stats.max_parked, 0u);
}

// ---------------------------------------------------------------------------
// TaskQueue: wait cancellation (the deadline-expiry teardown path).

TEST(TaskQueueTest, CancelledCellsStopParkingOnTheTimerWheel) {
  // Paced queue, 100-tick waits (long enough to cross the wheel's level-0
  // epoch, so the parked deadline cascades before it matures). The first
  // wait parks and is served by the wheel; after cancel_cell_waits the
  // second wait is virtual-only — charged to telemetry and debt, but no
  // wall obligation parked.
  TaskQueue queue(1, support::PacingPolicy{.wall_us_per_tick = 5}, /*record_trace=*/true);
  const FenceId done = queue.make_fence(1);
  queue.submit(
      [&] {
        queue.wait_ticks(0, 100);
        queue.cancel_cell_waits(0);
        queue.wait_ticks(0, 100);
      },
      std::nullopt, done, 0, "cancelling");
  queue.drain(done);

  const PipelineStats stats = queue.stats();
  EXPECT_EQ(stats.waits, 2u);
  EXPECT_EQ(stats.wait_ticks, 200u);  // virtual time is charged either way
  EXPECT_EQ(stats.cells_cancelled, 1u);
  EXPECT_EQ(stats.waits_cancelled, 1u);
  EXPECT_EQ(stats.timer_wakeups, 1u);  // only the pre-cancel wait matured
  EXPECT_TRUE(queue.cell_cancelled(0));
  EXPECT_FALSE(queue.cell_cancelled(1));

  // The cancelled wait still brackets WaitBegin/WaitEnd in the trace, so
  // overlap analysis never sees a dangling window.
  std::size_t begins = 0, ends = 0;
  for (const TraceEvent& event : queue.trace()) {
    if (event.cell != 0) continue;
    if (event.kind == TraceEvent::Kind::WaitBegin) ++begins;
    if (event.kind == TraceEvent::Kind::WaitEnd) ++ends;
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
}

TEST(TaskQueueTest, CancelIsIdempotentAndPerCell) {
  TaskQueue queue(1, support::PacingPolicy{});
  const FenceId done = queue.make_fence(1);
  queue.submit(
      [&] {
        queue.cancel_cell_waits(3);
        queue.cancel_cell_waits(3);  // double-cancel: one transition, one count
        queue.wait_ticks(3, 8);
        queue.wait_ticks(2, 8);  // a different cell's wait is untouched
      },
      std::nullopt, done, 3, "idempotent");
  queue.drain(done);

  const PipelineStats stats = queue.stats();
  EXPECT_EQ(stats.cells_cancelled, 1u);
  EXPECT_EQ(stats.waits_cancelled, 1u);
  EXPECT_EQ(stats.waits, 2u);
  EXPECT_TRUE(queue.cell_cancelled(3));
  EXPECT_FALSE(queue.cell_cancelled(2));
  EXPECT_FALSE(queue.cell_cancelled(99));  // never-seen cells read as live
}

TEST(TaskQueueTest, UnpacedCancelledWaitsStillCountTelemetry) {
  // Pacing off: waits are already wall-free, but the cancellation counter
  // must still tick so the campaign stats line tells the truth about how
  // many waits the deadline teardown released.
  TaskQueue queue(1, support::PacingPolicy{});
  const FenceId done = queue.make_fence(1);
  queue.submit(
      [&] {
        queue.wait_ticks(0, 5);
        queue.cancel_cell_waits(0);
        queue.wait_ticks(0, 7);
      },
      std::nullopt, done, 0, "unpaced");
  queue.drain(done);

  const PipelineStats stats = queue.stats();
  EXPECT_EQ(stats.waits, 2u);
  EXPECT_EQ(stats.wait_ticks, 12u);
  EXPECT_EQ(stats.waits_cancelled, 1u);
  EXPECT_EQ(stats.timer_wakeups, 0u);
}

TEST(TaskQueueTest, CancelledWaitsStopAccruingWaitDebt) {
  // The debt ledger is the scheduler's priority signal: virtual time is
  // charged to telemetry for every wait, but a cancelled cell stops
  // accruing debt — a dead cell must never outrank live ones in the ready
  // order.
  TaskQueue queue(1, support::PacingPolicy{});
  const FenceId done = queue.make_fence(1);
  queue.submit(
      [&] {
        queue.wait_ticks(5, 10);
        queue.cancel_cell_waits(5);
        queue.wait_ticks(5, 90);
      },
      std::nullopt, done, 5, "debt");
  queue.drain(done);

  EXPECT_EQ(queue.stats().wait_ticks, 100u);  // telemetry: both waits
  EXPECT_EQ(queue.cell_wait_debt(5), 10u);    // ledger: only the live one
  EXPECT_EQ(queue.cell_wait_debt(0), 0u);
}

TEST(TaskQueueTest, CancelReleasesAParkedWaitWithoutATimerWakeup) {
  // Cell 0 parks a wall deadline far in the future; while it helps, cell
  // 1's task cancels cell 0. The parked wait must be released by the
  // cancellation (counted as waits_cancelled), never by the timer — if
  // this regresses, the test stalls on the 20-second deadline and the
  // wakeup counter flags the double charge.
  TaskQueue queue(1, support::PacingPolicy{.wall_us_per_tick = 1000},
                  /*record_trace=*/true);
  const FenceId done = queue.make_fence(2);
  queue.submit([&] { queue.wait_ticks(0, 20000); }, std::nullopt, done, 0, "parked");
  queue.submit([&] { queue.cancel_cell_waits(0); }, std::nullopt, done, 1, "canceller");
  queue.drain(done);

  const PipelineStats stats = queue.stats();
  EXPECT_EQ(stats.cells_cancelled, 1u);
  EXPECT_EQ(stats.waits_cancelled, 1u);
  EXPECT_EQ(stats.timer_wakeups, 0u);
  EXPECT_GE(stats.helped_tasks, 1u);  // the canceller ran inside the park
}

// ---------------------------------------------------------------------------
// Campaign-level: bit-identity across schedulers, and the overlap proof.

CampaignSpec pipeline_spec() {
  CampaignSpec spec;
  std::vector<const char*> names = {"Netflix"};
  if (!kUnderTsan) names.push_back("Amazon Prime Video");
  for (const char* name : names) {
    const auto app = ott::find_app(name);
    EXPECT_TRUE(app.has_value()) << name;
    spec.apps.push_back(*app);
  }
  spec.attempt_rip = false;
  spec.chaos = net::FaultProfile::FlakyCdn;  // retries + backoff = real waits
  return spec;
}

TEST(PipelineTest, ReportsBitIdenticalAcrossModesWorkersAndPacing) {
  CampaignSpec base = pipeline_spec();

  CampaignSpec sync = base;
  sync.mode = ExecutionMode::Synchronous;
  sync.workers = 1;
  const CampaignResult reference = CampaignRunner(std::move(sync)).run();
  const std::string expected = render_campaign_report(reference);

  const std::vector<std::size_t> ladder =
      kUnderTsan ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 2, 8};
  for (const std::size_t workers : ladder) {
    CampaignSpec spec = base;
    spec.mode = ExecutionMode::Pipelined;
    spec.workers = workers;
    const CampaignResult result = CampaignRunner(std::move(spec)).run();
    EXPECT_EQ(render_campaign_report(result), expected) << "pipelined w" << workers;
    EXPECT_GT(result.stats.pipeline.tasks_executed, 0u);
  }

  // Pacing maps ticks to wall time but never touches virtual time: the
  // report must not move by a byte, in either mode.
  CampaignSpec paced_pipe = base;
  paced_pipe.mode = ExecutionMode::Pipelined;
  paced_pipe.workers = 2;
  paced_pipe.pacing.wall_us_per_tick = 300;
  EXPECT_EQ(render_campaign_report(CampaignRunner(std::move(paced_pipe)).run()), expected);

  CampaignSpec paced_sync = base;
  paced_sync.mode = ExecutionMode::Synchronous;
  paced_sync.workers = 1;
  paced_sync.pacing.wall_us_per_tick = 300;
  EXPECT_EQ(render_campaign_report(CampaignRunner(std::move(paced_sync)).run()), expected);
}

TEST(PipelineTest, CellStagesOverlapAnInjectedLatencyWindow) {
  // Deterministic latency on every request (per-mille 1000), one worker,
  // pacing on: each wait carries a real wall deadline, so the worker must
  // park it on the timer wheel and help — running another cell's stage
  // inside the latency window instead of stalling.
  CampaignSpec spec = pipeline_spec();
  spec.chaos = net::FaultProfile::None;
  net::FaultPlan plan;
  plan.name = "latency-everywhere";
  net::FaultRule rule;
  rule.host_prefix = "";  // every host
  rule.rates.latency_pm = 1000;
  rule.rates.latency_ticks = 25;
  plan.rules.push_back(rule);
  spec.fault_plan = plan;
  spec.mode = ExecutionMode::Pipelined;
  spec.workers = 1;
  spec.pacing.wall_us_per_tick = 2000;
  spec.record_schedule_trace = true;
  const CampaignResult result = CampaignRunner(std::move(spec)).run();

  const PipelineStats& stats = result.stats.pipeline;
  EXPECT_GT(stats.waits, 0u);
  EXPECT_GT(stats.timer_wakeups, 0u);
  EXPECT_GT(stats.helped_tasks, 0u) << "no stage ever ran inside a latency window";
  EXPECT_GE(stats.max_parked, 1u);
  // Every SimClock wait in pipelined mode is surfaced to the scheduler.
  EXPECT_EQ(stats.waits, result.stats.totals.sim_waits);
  EXPECT_EQ(stats.wait_ticks, result.stats.totals.sim_wait_ticks);

  // The overlap proof, from the totally-ordered trace: some WaitBegin/WaitEnd
  // window of cell A encloses a TaskBegin of cell B != A on the same worker.
  bool overlap_found = false;
  std::string nested_label;
  const std::vector<TraceEvent>& trace = result.trace;
  for (std::size_t i = 0; i < trace.size() && !overlap_found; ++i) {
    if (trace[i].kind != TraceEvent::Kind::WaitBegin) continue;
    for (std::size_t j = i + 1; j < trace.size(); ++j) {
      const TraceEvent& event = trace[j];
      if (event.kind == TraceEvent::Kind::WaitEnd && event.cell == trace[i].cell &&
          event.worker == trace[i].worker) {
        break;  // window closed without a nested foreign stage
      }
      if (event.kind == TraceEvent::Kind::TaskBegin && event.cell != trace[i].cell) {
        overlap_found = true;
        nested_label = event.label;
        break;
      }
    }
  }
  EXPECT_TRUE(overlap_found)
      << "no cell-B stage executed inside a cell-A latency window";
  EXPECT_FALSE(nested_label.empty());

  // And none of this perturbed the report: same plan, synchronous, unpaced.
  CampaignSpec sync = pipeline_spec();
  sync.chaos = net::FaultProfile::None;
  sync.fault_plan = plan;
  sync.mode = ExecutionMode::Synchronous;
  sync.workers = 1;
  EXPECT_EQ(render_campaign_report(result),
            render_campaign_report(CampaignRunner(std::move(sync)).run()));
}

TEST(PipelineTest, SegmentStagesInterleaveAcrossCells) {
  // Segment granularity, both halves:
  //  (a) one cell's playback is MANY "play" tasks (one download per step),
  //      not one monolithic task — the split the scheduler needs;
  //  (b) while cell A's play stage waits out a fetch-latency window, cell
  //      B's play stage (its decrypt included) runs inside that window on
  //      the same worker.
  CampaignSpec spec = pipeline_spec();
  spec.chaos = net::FaultProfile::None;
  net::FaultPlan plan;
  plan.name = "latency-everywhere";
  net::FaultRule rule;
  rule.host_prefix = "";
  rule.rates.latency_pm = 1000;
  rule.rates.latency_ticks = 25;
  plan.rules.push_back(rule);
  spec.fault_plan = plan;
  spec.mode = ExecutionMode::Pipelined;
  spec.workers = 1;
  spec.pacing.wall_us_per_tick = 2000;
  spec.record_schedule_trace = true;
  const CampaignResult result = CampaignRunner(std::move(spec)).run();

  // (a) Every cell's playback was split into several play-stage tasks.
  std::map<std::size_t, int> play_tasks;
  for (const TraceEvent& event : result.trace) {
    if (event.kind == TraceEvent::Kind::TaskBegin && event.label == "play") {
      ++play_tasks[event.cell];
    }
  }
  ASSERT_EQ(play_tasks.size(), result.cells.size());
  for (const auto& [cell, count] : play_tasks) {
    EXPECT_GT(count, 3) << "cell " << cell << " playback was not segment-split";
  }

  // (b) Walk the per-worker task nesting; find a wait opened inside a
  // "play" task that encloses a TaskBegin of ANOTHER cell's "play" task.
  std::map<std::size_t, std::vector<const TraceEvent*>> running;  // worker -> stack
  bool overlap_found = false;
  const std::vector<TraceEvent>& trace = result.trace;
  for (std::size_t i = 0; i < trace.size() && !overlap_found; ++i) {
    const TraceEvent& event = trace[i];
    if (event.kind == TraceEvent::Kind::TaskBegin) running[event.worker].push_back(&event);
    if (event.kind == TraceEvent::Kind::TaskEnd && !running[event.worker].empty()) {
      running[event.worker].pop_back();
    }
    if (event.kind != TraceEvent::Kind::WaitBegin) continue;
    const auto& stack = running[event.worker];
    if (stack.empty() || stack.back()->label != "play") continue;
    for (std::size_t j = i + 1; j < trace.size(); ++j) {
      const TraceEvent& inner = trace[j];
      if (inner.kind == TraceEvent::Kind::WaitEnd && inner.cell == event.cell &&
          inner.worker == event.worker) {
        break;  // window closed without a nested foreign play stage
      }
      if (inner.kind == TraceEvent::Kind::TaskBegin && inner.cell != event.cell &&
          inner.label == "play") {
        overlap_found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlap_found)
      << "no cell-B play segment executed inside a cell-A fetch-latency window";
}

// ---------------------------------------------------------------------------
// Cross-matrix shared scheduling: run_campaigns_shared.

TEST(PipelineTest, SharedQueueReportsMatchSoloRunsAtEveryWorkerCount) {
  // Two matrices with different chaos profiles through ONE TaskQueue: each
  // spec's report must stay bit-identical to running that spec alone, at
  // every worker count — per-cell seeds derive from each spec's own seed
  // and cell label, never from the shared schedule.
  CampaignSpec cdn = pipeline_spec();
  CampaignSpec license = pipeline_spec();
  license.chaos = net::FaultProfile::FlakyLicense;

  CampaignSpec cdn_solo = cdn;
  cdn_solo.mode = ExecutionMode::Synchronous;
  const std::string expected_cdn =
      render_campaign_report(CampaignRunner(std::move(cdn_solo)).run());
  CampaignSpec license_solo = license;
  license_solo.mode = ExecutionMode::Synchronous;
  const std::string expected_license =
      render_campaign_report(CampaignRunner(std::move(license_solo)).run());

  const std::vector<std::size_t> ladder =
      kUnderTsan ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 2, 4, 8};
  for (const std::size_t workers : ladder) {
    SharedCampaignConfig config;
    config.workers = workers;
    const std::vector<CampaignResult> results =
        run_campaigns_shared({cdn, license}, config);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(render_campaign_report(results[0]), expected_cdn) << "shared w" << workers;
    EXPECT_EQ(render_campaign_report(results[1]), expected_license)
        << "shared w" << workers;
    // Shared-schedule telemetry is a property of the queue: identical
    // snapshots on every result, covering both matrices' tasks.
    EXPECT_EQ(results[0].stats.pipeline.tasks_executed,
              results[1].stats.pipeline.tasks_executed);
    EXPECT_GT(results[0].stats.pipeline.tasks_executed,
              static_cast<std::uint64_t>(results[0].cells.size()));
    EXPECT_EQ(results[0].stats.wall_ms, results[1].stats.wall_ms);
  }
}

}  // namespace
}  // namespace wideleak::core
