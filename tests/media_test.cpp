// Media stack tests: synthetic codec, ISO-BMFF-lite boxes, CENC, XML and
// MPD manifests, and title packaging policies.
#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/modes.hpp"
#include "media/cenc.hpp"
#include "media/codec.hpp"
#include "media/content.hpp"
#include "media/mp4.hpp"
#include "media/mpd.hpp"
#include "media/xml.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"

namespace wideleak::media {
namespace {

// --- codec ---------------------------------------------------------------

TEST(Codec, FrameRoundTrip) {
  Frame frame;
  frame.index = 7;
  frame.type = TrackType::Video;
  frame.resolution = {960, 540};
  frame.payload = to_bytes("payload-bytes");
  const Bytes wire = frame.serialize();
  const auto parsed = Frame::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->consumed, wire.size());
  EXPECT_EQ(parsed->frame.index, 7u);
  EXPECT_EQ(parsed->frame.type, TrackType::Video);
  EXPECT_EQ(parsed->frame.resolution, (Resolution{960, 540}));
  EXPECT_EQ(parsed->frame.payload, to_bytes("payload-bytes"));
}

TEST(Codec, ParseRejectsBadMagic) {
  Frame frame;
  frame.payload = to_bytes("x");
  Bytes wire = frame.serialize();
  wire[0] ^= 0xff;
  EXPECT_FALSE(Frame::parse(wire).has_value());
}

TEST(Codec, ParseRejectsCorruptCrc) {
  Frame frame;
  frame.payload = to_bytes("hello");
  Bytes wire = frame.serialize();
  wire.back() ^= 1;
  EXPECT_FALSE(Frame::parse(wire).has_value());
}

TEST(Codec, ParseRejectsCorruptPayload) {
  Frame frame;
  frame.payload = to_bytes("hello world");
  Bytes wire = frame.serialize();
  wire[Frame::header_size() + 2] ^= 1;
  EXPECT_FALSE(Frame::parse(wire).has_value());
}

TEST(Codec, ParseRejectsTruncation) {
  Frame frame;
  frame.payload = to_bytes("hello");
  const Bytes wire = frame.serialize();
  for (const std::size_t cut : {std::size_t{1}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_FALSE(Frame::parse(BytesView(wire.data(), cut)).has_value()) << cut;
  }
}

TEST(Codec, GenerateIsDeterministic) {
  const auto a = generate_track_frames(42, TrackType::Video, {640, 360}, 5);
  const auto b = generate_track_frames(42, TrackType::Video, {640, 360}, 5);
  ASSERT_EQ(a.size(), 5u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].serialize(), b[i].serialize());
  }
  const auto c = generate_track_frames(43, TrackType::Video, {640, 360}, 5);
  EXPECT_NE(a[0].serialize(), c[0].serialize());
}

TEST(Codec, SubtitleFramesAreAscii) {
  for (const Frame& frame : generate_track_frames(1, TrackType::Subtitle, {}, 8)) {
    EXPECT_TRUE(is_printable_ascii(BytesView(frame.payload)));
  }
}

TEST(Codec, HigherResolutionMeansBiggerFrames) {
  const auto sd = generate_track_frames(1, TrackType::Video, {416, 234}, 1);
  const auto hd = generate_track_frames(1, TrackType::Video, {1920, 1080}, 1);
  EXPECT_GT(hd[0].payload.size(), sd[0].payload.size());
}

TEST(Codec, TryPlayAcceptsCleanStream) {
  const auto frames = generate_track_frames(9, TrackType::Video, {854, 480}, 12);
  const PlaybackReport report = try_play(BytesView(serialize_frames(frames)));
  EXPECT_TRUE(report.playable);
  EXPECT_EQ(report.frames, 12u);
  EXPECT_EQ(report.resolution, (Resolution{854, 480}));
}

TEST(Codec, TryPlayRejectsCorruptedStream) {
  const auto frames = generate_track_frames(9, TrackType::Video, {854, 480}, 3);
  Bytes stream = serialize_frames(frames);
  stream[stream.size() / 2] ^= 0x55;
  const PlaybackReport report = try_play(BytesView(stream));
  EXPECT_FALSE(report.playable);
  EXPECT_FALSE(report.failure_reason.empty());
}

TEST(Codec, TryPlayRejectsEmptyAndGarbage) {
  EXPECT_FALSE(try_play(BytesView()).playable);
  Rng rng(3);
  const Bytes garbage = rng.next_bytes(200);
  EXPECT_FALSE(try_play(BytesView(garbage)).playable);
}

// --- mp4 boxes -------------------------------------------------------------

TEST(Mp4, BoxSequenceRoundTrip) {
  Box leaf{.fourcc = "mdat", .payload = to_bytes("data!"), .children = {}};
  Box container{.fourcc = "moov", .payload = {}, .children = {}};
  container.children.push_back(Box{.fourcc = "pssh", .payload = to_bytes("x"), .children = {}});
  const Bytes wire = concat({BytesView(container.serialize()), BytesView(leaf.serialize())});
  const auto boxes = Box::parse_sequence(wire);
  ASSERT_EQ(boxes.size(), 2u);
  EXPECT_EQ(boxes[0].fourcc, "moov");
  ASSERT_EQ(boxes[0].children.size(), 1u);
  EXPECT_EQ(boxes[0].children[0].fourcc, "pssh");
  EXPECT_EQ(boxes[1].payload, to_bytes("data!"));
}

TEST(Mp4, ParseRejectsTruncatedAndOversizeBoxes) {
  Bytes truncated{0x00, 0x00, 0x00};
  EXPECT_THROW(Box::parse_sequence(truncated), ParseError);
  Bytes oversize{0x00, 0x00, 0xff, 0xff, 'm', 'd', 'a', 't'};
  EXPECT_THROW(Box::parse_sequence(oversize), ParseError);
  Bytes undersize{0x00, 0x00, 0x00, 0x04, 'm', 'd', 'a', 't'};  // size < 8
  EXPECT_THROW(Box::parse_sequence(undersize), ParseError);
}

TEST(Mp4, FindSearchesDepthFirst) {
  Box root{.fourcc = "moov", .payload = {}, .children = {}};
  Box trak{.fourcc = "trak", .payload = {}, .children = {}};
  trak.children.push_back(Box{.fourcc = "tkhd", .payload = to_bytes("t"), .children = {}});
  root.children.push_back(std::move(trak));
  ASSERT_NE(root.find("tkhd"), nullptr);
  EXPECT_EQ(root.find("tkhd")->payload, to_bytes("t"));
  EXPECT_EQ(root.find("mdat"), nullptr);
  EXPECT_EQ(root.child("pssh"), nullptr);
}

TEST(Mp4, PsshRoundTrip) {
  Rng rng(4);
  PsshBox pssh;
  pssh.key_ids = {rng.next_bytes(16), rng.next_bytes(16)};
  const PsshBox restored = PsshBox::from_box(pssh.to_box());
  EXPECT_EQ(restored.system_id, std::string(kWidevineSystemId));
  EXPECT_EQ(restored.key_ids, pssh.key_ids);
}

TEST(Mp4, TencRoundTrip) {
  Rng rng(5);
  TencBox tenc;
  tenc.protected_scheme = true;
  tenc.iv_size = 8;
  tenc.default_key_id = rng.next_bytes(16);
  const TencBox restored = TencBox::from_box(tenc.to_box());
  EXPECT_TRUE(restored.protected_scheme);
  EXPECT_EQ(restored.iv_size, 8);
  EXPECT_EQ(restored.default_key_id, tenc.default_key_id);
}

TEST(Mp4, SencRoundTrip) {
  Rng rng(6);
  SencBox senc;
  SampleEncryptionEntry entry;
  entry.iv = rng.next_bytes(8);
  entry.subsamples.push_back({17, 300});
  entry.subsamples.push_back({4, 12});
  senc.entries.push_back(entry);
  const SencBox restored = SencBox::from_box(senc.to_box());
  ASSERT_EQ(restored.entries.size(), 1u);
  EXPECT_EQ(restored.entries[0].iv, entry.iv);
  ASSERT_EQ(restored.entries[0].subsamples.size(), 2u);
  EXPECT_EQ(restored.entries[0].subsamples[1].clear_bytes, 4);
  EXPECT_EQ(restored.entries[0].subsamples[1].protected_bytes, 12u);
}

TEST(Mp4, WrongBoxTypeThrows) {
  Box mdat{.fourcc = "mdat", .payload = {}, .children = {}};
  EXPECT_THROW(PsshBox::from_box(mdat), ParseError);
  EXPECT_THROW(TencBox::from_box(mdat), ParseError);
  EXPECT_THROW(SencBox::from_box(mdat), ParseError);
}

// --- CENC --------------------------------------------------------------------

class CencTest : public ::testing::TestWithParam<TrackType> {};

INSTANTIATE_TEST_SUITE_P(AllTrackTypes, CencTest,
                         ::testing::Values(TrackType::Video, TrackType::Audio,
                                           TrackType::Subtitle));

TEST_P(CencTest, EncryptDecryptRoundTrip) {
  Rng rng(7);
  const TrackType type = GetParam();
  const Resolution res = type == TrackType::Video ? Resolution{960, 540} : Resolution{};
  const auto frames = generate_track_frames(11, type, res, 10);
  const Bytes key = rng.next_bytes(16);
  const KeyId kid = rng.next_bytes(16);
  TrakBox trak{.type = type, .resolution = res, .language = "en"};

  const PackagedTrack track = package_encrypted(trak, frames, key, kid, rng);
  EXPECT_TRUE(track.encrypted);
  EXPECT_EQ(track.key_id, kid);
  EXPECT_EQ(track.samples.size(), 10u);

  // Ciphertext must not play...
  EXPECT_FALSE(try_play(BytesView(raw_sample_stream(track))).playable);
  // ...but the decryption must restore the exact stream.
  EXPECT_EQ(cenc_decrypt_track(track, key), serialize_frames(frames));
}

TEST(Cenc, WrongKeyYieldsUnplayableOutput) {
  Rng rng(8);
  const auto frames = generate_track_frames(12, TrackType::Video, {640, 360}, 5);
  const Bytes key = rng.next_bytes(16);
  const Bytes wrong = rng.next_bytes(16);
  TrakBox trak{.type = TrackType::Video, .resolution = {640, 360}, .language = "en"};
  const PackagedTrack track = package_encrypted(trak, frames, key, rng.next_bytes(16), rng);
  const Bytes garbage = cenc_decrypt_track(track, wrong);
  EXPECT_FALSE(try_play(BytesView(garbage)).playable);
}

TEST(Cenc, SubsampleHeadersStayClear) {
  Rng rng(9);
  const auto frames = generate_track_frames(13, TrackType::Video, {640, 360}, 3);
  TrakBox trak{.type = TrackType::Video, .resolution = {640, 360}, .language = "en"};
  const PackagedTrack track =
      package_encrypted(trak, frames, rng.next_bytes(16), rng.next_bytes(16), rng);
  for (std::size_t i = 0; i < track.samples.size(); ++i) {
    const Bytes record = frames[i].serialize();
    const Bytes expected_header(record.begin(), record.begin() + Frame::header_size());
    const Bytes actual_header(track.samples[i].begin(),
                              track.samples[i].begin() + Frame::header_size());
    EXPECT_EQ(actual_header, expected_header) << "sample " << i;
  }
}

TEST(Cenc, FileRoundTrip) {
  Rng rng(10);
  const auto frames = generate_track_frames(14, TrackType::Audio, {}, 6);
  TrakBox trak{.type = TrackType::Audio, .resolution = {}, .language = "fr"};
  const Bytes key = rng.next_bytes(16);
  const KeyId kid = rng.next_bytes(16);
  const PackagedTrack track = package_encrypted(trak, frames, key, kid, rng);

  const Bytes file = track.to_file();
  const PackagedTrack restored = PackagedTrack::from_file(file);
  EXPECT_TRUE(restored.encrypted);
  EXPECT_EQ(restored.key_id, kid);
  EXPECT_EQ(restored.track.type, TrackType::Audio);
  EXPECT_EQ(restored.track.language, "fr");
  EXPECT_EQ(cenc_decrypt_track(restored, key), serialize_frames(frames));
}

TEST(Cenc, ClearFileRoundTrip) {
  const auto frames = generate_track_frames(15, TrackType::Subtitle, {}, 4);
  TrakBox trak{.type = TrackType::Subtitle, .resolution = {}, .language = "en"};
  const PackagedTrack track = package_clear(trak, frames);
  const PackagedTrack restored = PackagedTrack::from_file(track.to_file());
  EXPECT_FALSE(restored.encrypted);
  EXPECT_TRUE(try_play(BytesView(raw_sample_stream(restored))).playable);
}

TEST(Cenc, InPlaceMatchesSubsampleCopyReference) {
  // The production path copies each sample once and XORs protected runs in
  // place (merging contiguous runs into single CTR calls). This reference
  // decrypts the slow way — one out-of-place process() per subsample — and
  // the two must agree bit for bit.
  Rng rng(17);
  const auto frames = generate_track_frames(21, TrackType::Video, {960, 540}, 8);
  const Bytes key = rng.next_bytes(16);
  TrakBox trak{.type = TrackType::Video, .resolution = {960, 540}, .language = "en"};
  const PackagedTrack track = package_encrypted(trak, frames, key, rng.next_bytes(16), rng);

  const crypto::Aes aes{key};
  Bytes reference;
  for (std::size_t s = 0; s < track.samples.size(); ++s) {
    const Bytes& sample = track.samples[s];
    const SampleEncryptionEntry& entry = track.senc.entries[s];
    Bytes iv16(16, 0x00);
    std::copy(entry.iv.begin(), entry.iv.end(), iv16.begin());
    crypto::AesCtrStream stream(aes, iv16);
    std::size_t pos = 0;
    for (const SampleEncryptionEntry::Subsample& sub : entry.subsamples) {
      reference.insert(reference.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos),
                       sample.begin() + static_cast<std::ptrdiff_t>(pos + sub.clear_bytes));
      pos += sub.clear_bytes;
      const Bytes plain =
          stream.process(BytesView(sample.data() + pos, sub.protected_bytes));
      reference.insert(reference.end(), plain.begin(), plain.end());
      pos += sub.protected_bytes;
    }
    reference.insert(reference.end(), sample.begin() + static_cast<std::ptrdiff_t>(pos),
                     sample.end());
  }

  EXPECT_EQ(cenc_decrypt_track(track, key), reference);
  Bytes appended;
  cenc_decrypt_track_append(track, key, appended);
  EXPECT_EQ(appended, reference);
}

TEST(Cenc, AppendVariantsExtendExistingBytes) {
  Rng rng(18);
  const auto frames = generate_track_frames(22, TrackType::Audio, {}, 5);
  const Bytes key = rng.next_bytes(16);
  TrakBox trak{.type = TrackType::Audio, .resolution = {}, .language = "en"};
  const PackagedTrack track = package_encrypted(trak, frames, key, rng.next_bytes(16), rng);

  Bytes out = {0xde, 0xad, 0xbe, 0xef};
  cenc_decrypt_track_append(track, key, out);
  Bytes expected = {0xde, 0xad, 0xbe, 0xef};
  const Bytes plain = cenc_decrypt_track(track, key);
  expected.insert(expected.end(), plain.begin(), plain.end());
  EXPECT_EQ(out, expected);

  Bytes raw_out = {0x01, 0x02};
  raw_sample_stream_append(track, raw_out);
  Bytes raw_expected = {0x01, 0x02};
  const Bytes raw = raw_sample_stream(track);
  raw_expected.insert(raw_expected.end(), raw.begin(), raw.end());
  EXPECT_EQ(raw_out, raw_expected);
}

TEST(Cenc, AppendValidatesBoundsBeforeTouchingOut) {
  Rng rng(19);
  const auto frames = generate_track_frames(23, TrackType::Video, {640, 360}, 3);
  const Bytes key = rng.next_bytes(16);
  TrakBox trak{.type = TrackType::Video, .resolution = {640, 360}, .language = "en"};
  PackagedTrack track = package_encrypted(trak, frames, key, rng.next_bytes(16), rng);
  // Inflate the last sample's subsample map past the sample's actual size.
  track.senc.entries.back().subsamples.back().protected_bytes += 1000;

  Bytes out = {0xaa, 0xbb};
  EXPECT_THROW(cenc_decrypt_track_append(track, key, out), ParseError);
  EXPECT_EQ(out, (Bytes{0xaa, 0xbb}));  // strong guarantee: untouched on throw
}

TEST(Cenc, DecryptClearTrackThrows) {
  const auto frames = generate_track_frames(16, TrackType::Audio, {}, 2);
  TrakBox trak{.type = TrackType::Audio, .resolution = {}, .language = "en"};
  const PackagedTrack track = package_clear(trak, frames);
  Rng rng(11);
  EXPECT_THROW(cenc_decrypt_track(track, rng.next_bytes(16)), CryptoError);
}

// --- XML ----------------------------------------------------------------------

TEST(Xml, ParseSimpleDocument) {
  const XmlNode root = xml_parse("<?xml version=\"1.0\"?>\n<a x=\"1\"><b/><b y=\"2\"/></a>");
  EXPECT_EQ(root.name, "a");
  EXPECT_EQ(root.attribute("x"), "1");
  EXPECT_EQ(root.children_named("b").size(), 2u);
  EXPECT_EQ(root.children_named("b")[1]->attribute("y"), "2");
}

TEST(Xml, TextContentAndEntities) {
  const XmlNode root = xml_parse("<u>a &amp; b &lt;c&gt;</u>");
  EXPECT_EQ(root.text, "a & b <c>");
}

TEST(Xml, SerializeParseRoundTrip) {
  XmlNode root;
  root.name = "MPD";
  root.attributes["type"] = "static";
  XmlNode child;
  child.name = "BaseURL";
  child.text = "/a/b?x=1&y=\"2\"";
  root.children.push_back(child);
  const XmlNode restored = xml_parse(root.serialize());
  EXPECT_EQ(restored.name, "MPD");
  EXPECT_EQ(restored.attribute("type"), "static");
  ASSERT_NE(restored.child("BaseURL"), nullptr);
  EXPECT_EQ(restored.child("BaseURL")->text, "/a/b?x=1&y=\"2\"");
}

TEST(Xml, Comments) {
  const XmlNode root = xml_parse("<a><!-- note --><b/></a>");
  EXPECT_EQ(root.children.size(), 1u);
}

TEST(Xml, MalformedInputsThrow) {
  EXPECT_THROW(xml_parse("<a>"), ParseError);
  EXPECT_THROW(xml_parse("<a></b>"), ParseError);
  EXPECT_THROW(xml_parse("<a x=1/>"), ParseError);
  EXPECT_THROW(xml_parse("<a/><b/>"), ParseError);
  EXPECT_THROW(xml_parse("<a>&unknown;</a>"), ParseError);
}

// --- MPD -----------------------------------------------------------------------

TEST(Mpd, SerializeParseRoundTrip) {
  Rng rng(12);
  Mpd mpd;
  mpd.title = "Test Movie";
  MpdRepresentation video;
  video.id = "video_540p";
  video.type = TrackType::Video;
  video.resolution = {960, 540};
  video.base_url = "/content/test/video_540p.mp4";
  video.default_kid = rng.next_bytes(16);
  mpd.representations.push_back(video);
  MpdRepresentation audio;
  audio.id = "audio_en";
  audio.type = TrackType::Audio;
  audio.language = "en";
  audio.base_url = "/content/test/audio_en.mp4";
  mpd.representations.push_back(audio);

  const Mpd restored = Mpd::parse(mpd.serialize());
  EXPECT_EQ(restored.title, "Test Movie");
  ASSERT_EQ(restored.representations.size(), 2u);
  EXPECT_EQ(restored.representations[0].resolution, (Resolution{960, 540}));
  EXPECT_EQ(restored.representations[0].default_kid, video.default_kid);
  EXPECT_FALSE(restored.representations[1].default_kid.has_value());
  EXPECT_EQ(restored.of_type(TrackType::Audio).size(), 1u);
}

TEST(Mpd, ParseRejectsNonMpdDocuments) {
  EXPECT_THROW(Mpd::parse("<NotMPD/>"), ParseError);
  EXPECT_THROW(Mpd::parse("<MPD/>"), ParseError);  // no Period
}

// --- title packaging -------------------------------------------------------------

TEST(Packaging, QualityLadderAndKeyCountMinimum) {
  ContentPolicy policy{.encrypt_video = true,
                       .encrypt_audio = true,
                       .encrypt_subtitles = false,
                       .key_usage = KeyUsagePolicy::Minimum};
  const PackagedTitle title = package_title(77, "Movie", {"en", "fr"}, {"en"}, policy);
  // 6 qualities -> 6 video keys; audio reuses the SD video key -> no extra.
  EXPECT_EQ(title.keys.size(), 6u);
  EXPECT_EQ(title.mpd.of_type(TrackType::Video).size(), 6u);
  EXPECT_EQ(title.mpd.of_type(TrackType::Audio).size(), 2u);
  EXPECT_EQ(title.mpd.of_type(TrackType::Subtitle).size(), 1u);
  // The audio kid equals the lowest-quality video kid.
  const auto* audio = title.mpd.of_type(TrackType::Audio)[0];
  const auto* sd_video = title.mpd.of_type(TrackType::Video)[0];
  ASSERT_TRUE(audio->default_kid && sd_video->default_kid);
  EXPECT_EQ(*audio->default_kid, *sd_video->default_kid);
}

TEST(Packaging, RecommendedPolicyUsesDistinctAudioKeys) {
  ContentPolicy policy{.encrypt_video = true,
                       .encrypt_audio = true,
                       .encrypt_subtitles = false,
                       .key_usage = KeyUsagePolicy::Recommended};
  const PackagedTitle title = package_title(78, "Movie", {"en", "fr"}, {}, policy);
  EXPECT_EQ(title.keys.size(), 8u);  // 6 video + 2 audio
  const auto* audio = title.mpd.of_type(TrackType::Audio)[0];
  for (const auto* video : title.mpd.of_type(TrackType::Video)) {
    EXPECT_NE(*audio->default_kid, *video->default_kid);
  }
}

TEST(Packaging, ClearAudioHasNoKid) {
  ContentPolicy policy{.encrypt_video = true,
                       .encrypt_audio = false,
                       .encrypt_subtitles = false,
                       .key_usage = KeyUsagePolicy::Minimum};
  const PackagedTitle title = package_title(79, "Movie", {"en"}, {"en"}, policy);
  EXPECT_FALSE(title.mpd.of_type(TrackType::Audio)[0]->default_kid.has_value());
  // And the served file really is playable as-is.
  const auto& file = title.files.at(title.mpd.of_type(TrackType::Audio)[0]->base_url);
  const PackagedTrack track = PackagedTrack::from_file(BytesView(file));
  EXPECT_TRUE(try_play(BytesView(raw_sample_stream(track))).playable);
}

TEST(Packaging, DeterministicAcrossCalls) {
  ContentPolicy policy;
  const PackagedTitle a = package_title(80, "Same", {"en"}, {"en"}, policy);
  const PackagedTitle b = package_title(80, "Same", {"en"}, {"en"}, policy);
  ASSERT_EQ(a.keys.size(), b.keys.size());
  for (std::size_t i = 0; i < a.keys.size(); ++i) {
    EXPECT_EQ(a.keys[i].kid, b.keys[i].kid);
    EXPECT_EQ(a.keys[i].key, b.keys[i].key);
  }
  EXPECT_EQ(a.files, b.files);
}

TEST(Packaging, KeyForLookup) {
  const PackagedTitle title = package_title(81, "Movie", {"en"}, {}, ContentPolicy{});
  ASSERT_FALSE(title.keys.empty());
  EXPECT_NE(title.key_for(title.keys[0].kid), nullptr);
  EXPECT_EQ(title.key_for(Bytes(16, 0)), nullptr);
}

TEST(Packaging, EveryVideoKeyIsResolutionTagged) {
  const PackagedTitle title = package_title(82, "Movie", {}, {}, ContentPolicy{});
  std::set<std::string> kids;
  for (const ContentKey& key : title.keys) {
    EXPECT_EQ(key.type, TrackType::Video);
    EXPECT_NE(key.resolution.height, 0);
    kids.insert(hex_encode(key.kid));
  }
  EXPECT_EQ(kids.size(), title.keys.size());  // all distinct
}

}  // namespace
}  // namespace wideleak::media
