// Provisioning and license server tests, including full CDM<->server
// exchanges (no network — direct message passing).
#include <gtest/gtest.h>

#include <memory>

#include "hooking/process.hpp"
#include "media/content.hpp"
#include "widevine/cdm.hpp"
#include "widevine/license_server.hpp"
#include "widevine/provisioning_server.hpp"

namespace wideleak::widevine {
namespace {

class ServersTest : public ::testing::Test {
 protected:
  ServersTest()
      : roots_(std::make_shared<DeviceRootDatabase>()),
        provisioning_(roots_, 11, 512),
        license_(roots_, 12),
        host_("mediadrmserver"),
        keybox_(make_factory_keybox("srv-test-device", 3)) {
    // The shared test device is certified L1 (its L3 CDM instances simply
    // claim L3, which strict verification leaves untouched).
    roots_->register_device(keybox_, SecurityLevel::L1);
    title_ = media::package_title(555, "Server Test Movie", {"en"}, {"en"},
                                  media::ContentPolicy{});
    license_.add_title(title_);
  }

  std::unique_ptr<WidevineCdm> make_cdm(SecurityLevel level, CdmVersion version) {
    OemCryptoConfig config;
    config.level = level;
    config.version = version;
    config.host = &host_;
    config.tee = &tee_;
    config.seed = 77 + next_cdm_seed_++;  // distinct streams -> distinct nonces
    auto cdm = std::make_unique<WidevineCdm>(config);
    cdm->install_keybox(keybox_);
    return cdm;
  }

  ClientIdentity identity_for(const WidevineCdm& cdm) const {
    ClientIdentity id;
    id.stable_id = keybox_.stable_id();
    id.device_model = "Test Device";
    id.cdm_version = cdm.version();
    id.level = cdm.security_level();
    return id;
  }

  std::vector<media::KeyId> all_kids() const {
    std::vector<media::KeyId> kids;
    for (const auto& key : title_.keys) kids.push_back(key.kid);
    return kids;
  }

  std::shared_ptr<DeviceRootDatabase> roots_;
  ProvisioningServer provisioning_;
  LicenseServer license_;
  hooking::SimProcess host_;
  Tee tee_;
  Keybox keybox_;
  media::PackagedTitle title_;
  std::uint64_t next_cdm_seed_ = 0;
};

// --- DeviceRootDatabase ------------------------------------------------------

TEST_F(ServersTest, RootDatabaseLookups) {
  EXPECT_TRUE(roots_->device_key_for(keybox_.stable_id()).has_value());
  EXPECT_EQ(*roots_->device_key_for(keybox_.stable_id()), keybox_.device_key());
  EXPECT_FALSE(roots_->device_key_for(to_bytes("unknown")).has_value());
  EXPECT_FALSE(roots_->provisioned_key_for(keybox_.stable_id()).has_value());
}

// --- provisioning -----------------------------------------------------------------

TEST_F(ServersTest, ProvisioningGrantsDeviceRsaKey) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  EXPECT_FALSE(cdm->is_provisioned());
  const ProvisioningRequest request = cdm->create_provisioning_request(identity_for(*cdm));
  const ProvisioningResponse response = provisioning_.handle(request);
  ASSERT_TRUE(response.granted) << response.deny_reason;
  EXPECT_EQ(cdm->process_provisioning_response(response), OemCryptoResult::Success);
  EXPECT_TRUE(cdm->is_provisioned());
  // The issued public key is now registered server-side.
  EXPECT_TRUE(roots_->provisioned_key_for(keybox_.stable_id()).has_value());
  EXPECT_EQ(*roots_->provisioned_key_for(keybox_.stable_id()),
            *cdm->oemcrypto().device_rsa_public());
}

TEST_F(ServersTest, ProvisioningRejectsUnknownDevice) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  ProvisioningRequest request = cdm->create_provisioning_request(identity_for(*cdm));
  request.client.stable_id = to_bytes("not-in-database");
  const ProvisioningResponse response = provisioning_.handle(request);
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.deny_reason, "unknown device");
}

TEST_F(ServersTest, ProvisioningRejectsBadSignature) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  ProvisioningRequest request = cdm->create_provisioning_request(identity_for(*cdm));
  request.signature[0] ^= 1;
  EXPECT_FALSE(provisioning_.handle(request).granted);
}

TEST_F(ServersTest, ProvisioningPolicyRevocation) {
  provisioning_.set_policy(recommended_revocation_policy());
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  const ProvisioningResponse response =
      provisioning_.handle(cdm->create_provisioning_request(identity_for(*cdm)));
  EXPECT_FALSE(response.granted);
  EXPECT_NE(response.deny_reason.find("revoked"), std::string::npos);
  // A current CDM passes the same policy.
  auto modern = make_cdm(SecurityLevel::L1, kCurrentCdm);
  EXPECT_TRUE(provisioning_
                  .handle(modern->create_provisioning_request(identity_for(*modern)))
                  .granted);
}

TEST_F(ServersTest, ProvisioningIsIdempotentPerDevice) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  const auto r1 = provisioning_.handle(cdm->create_provisioning_request(identity_for(*cdm)));
  ASSERT_EQ(cdm->process_provisioning_response(r1), OemCryptoResult::Success);
  const auto pub1 = *cdm->oemcrypto().device_rsa_public();
  const auto r2 = provisioning_.handle(cdm->create_provisioning_request(identity_for(*cdm)));
  ASSERT_TRUE(r2.granted);
  ASSERT_EQ(cdm->process_provisioning_response(r2), OemCryptoResult::Success);
  EXPECT_EQ(*cdm->oemcrypto().device_rsa_public(), pub1);  // same key re-issued
}

TEST_F(ServersTest, TamperedProvisioningResponseRejectedByCdm) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  ProvisioningResponse response =
      provisioning_.handle(cdm->create_provisioning_request(identity_for(*cdm)));
  response.wrapped_rsa_key[0] ^= 1;
  EXPECT_EQ(cdm->process_provisioning_response(response), OemCryptoResult::SignatureFailure);
  EXPECT_FALSE(cdm->is_provisioned());
}

// --- licensing: keybox path --------------------------------------------------------

TEST_F(ServersTest, KeyboxPathLicenseDeliversKeys) {
  auto cdm = make_cdm(SecurityLevel::L1, kCurrentCdm);  // unprovisioned -> keybox path
  const auto session = cdm->open_session();
  const LicenseRequest request =
      cdm->create_license_request(session, identity_for(*cdm), all_kids());
  EXPECT_EQ(request.scheme, SignatureScheme::KeyboxCmac);
  const LicenseResponse response = license_.handle(request, permissive_revocation_policy());
  ASSERT_TRUE(response.granted) << response.deny_reason;
  EXPECT_TRUE(response.session_key_wrapped.empty());
  ASSERT_EQ(cdm->process_license_response(session, response), OemCryptoResult::Success);
  // L1 client: all 6 video keys (audio shares the SD key under Minimum).
  EXPECT_EQ(cdm->oemcrypto().loaded_key_ids(session).size(), title_.keys.size());
}

TEST_F(ServersTest, LicenseFiltersHdKeysForL3Clients) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  const auto session = cdm->open_session();
  const LicenseRequest request =
      cdm->create_license_request(session, identity_for(*cdm), all_kids());
  const LicenseResponse response = license_.handle(request, permissive_revocation_policy());
  ASSERT_TRUE(response.granted);
  // Only sub-HD keys are present (234p..540p = 4 of the 6 ladder rungs).
  std::size_t sub_hd = 0;
  for (const auto& key : title_.keys) {
    if (!key.resolution.is_hd()) ++sub_hd;
  }
  EXPECT_EQ(response.keys.size(), sub_hd);
  for (const KeyContainer& container : response.keys) {
    EXPECT_EQ(container.min_level, SecurityLevel::L3);
  }
}

TEST_F(ServersTest, LicenseRejectsBadCmacSignature) {
  auto cdm = make_cdm(SecurityLevel::L1, kCurrentCdm);
  const auto session = cdm->open_session();
  LicenseRequest request = cdm->create_license_request(session, identity_for(*cdm), all_kids());
  request.signature[3] ^= 1;
  EXPECT_FALSE(license_.handle(request, permissive_revocation_policy()).granted);
}

TEST_F(ServersTest, LicenseRevocationPolicy) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  const auto session = cdm->open_session();
  const LicenseRequest request =
      cdm->create_license_request(session, identity_for(*cdm), all_kids());
  const LicenseResponse response = license_.handle(request, recommended_revocation_policy());
  EXPECT_FALSE(response.granted);
  EXPECT_NE(response.deny_reason.find("revoked"), std::string::npos);
}

TEST_F(ServersTest, UnknownKidsAreSilentlySkipped) {
  auto cdm = make_cdm(SecurityLevel::L1, kCurrentCdm);
  const auto session = cdm->open_session();
  Rng rng(8);
  std::vector<media::KeyId> kids = {title_.keys[0].kid, rng.next_bytes(16)};
  const LicenseRequest request = cdm->create_license_request(session, identity_for(*cdm), kids);
  const LicenseResponse response = license_.handle(request, permissive_revocation_policy());
  ASSERT_TRUE(response.granted);
  EXPECT_EQ(response.keys.size(), 1u);
}

// --- licensing: RSA (provisioned) path ------------------------------------------------

TEST_F(ServersTest, RsaPathEndToEnd) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  ASSERT_EQ(cdm->process_provisioning_response(provisioning_.handle(
                cdm->create_provisioning_request(identity_for(*cdm)))),
            OemCryptoResult::Success);

  const auto session = cdm->open_session();
  const LicenseRequest request =
      cdm->create_license_request(session, identity_for(*cdm), all_kids());
  EXPECT_EQ(request.scheme, SignatureScheme::DeviceRsa);
  const LicenseResponse response = license_.handle(request, permissive_revocation_policy());
  ASSERT_TRUE(response.granted) << response.deny_reason;
  EXPECT_FALSE(response.session_key_wrapped.empty());
  ASSERT_EQ(cdm->process_license_response(session, response), OemCryptoResult::Success);
  EXPECT_FALSE(cdm->oemcrypto().loaded_key_ids(session).empty());

  // And the loaded keys really decrypt the title's media.
  const auto* rep = title_.mpd.of_type(media::TrackType::Video)[0];
  const auto track =
      media::PackagedTrack::from_file(BytesView(title_.files.at(rep->base_url)));
  ASSERT_EQ(cdm->select_key(session, track.key_id), OemCryptoResult::Success);
}

TEST_F(ServersTest, RsaPathRejectsUnprovisionedDevice) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  ASSERT_EQ(cdm->process_provisioning_response(provisioning_.handle(
                cdm->create_provisioning_request(identity_for(*cdm)))),
            OemCryptoResult::Success);
  const auto session = cdm->open_session();
  LicenseRequest request = cdm->create_license_request(session, identity_for(*cdm), all_kids());
  request.client.stable_id = to_bytes("someone-else");
  EXPECT_FALSE(license_.handle(request, permissive_revocation_policy()).granted);
}

TEST_F(ServersTest, RsaPathRejectsSubstitutedPublicKey) {
  auto cdm = make_cdm(SecurityLevel::L3, kLegacyCdm);
  ASSERT_EQ(cdm->process_provisioning_response(provisioning_.handle(
                cdm->create_provisioning_request(identity_for(*cdm)))),
            OemCryptoResult::Success);
  const auto session = cdm->open_session();
  LicenseRequest request = cdm->create_license_request(session, identity_for(*cdm), all_kids());
  Rng rng(13);
  request.device_rsa_public = crypto::rsa_generate(rng, 512).pub.serialize();
  const LicenseResponse response = license_.handle(request, permissive_revocation_policy());
  EXPECT_FALSE(response.granted);
  EXPECT_EQ(response.deny_reason, "device key mismatch");
}

TEST_F(ServersTest, GenericKeyServedLikeContentKeys) {
  Rng rng(14);
  const media::KeyId kid = rng.next_bytes(16);
  const Bytes key = rng.next_bytes(16);
  license_.add_generic_key(kid, SecretBytes(key));

  auto cdm = make_cdm(SecurityLevel::L1, kCurrentCdm);
  const auto session = cdm->open_session();
  const LicenseRequest request = cdm->create_license_request(session, identity_for(*cdm), {kid});
  const LicenseResponse response = license_.handle(request, permissive_revocation_policy());
  ASSERT_TRUE(response.granted);
  ASSERT_EQ(response.keys.size(), 1u);
  ASSERT_EQ(cdm->process_license_response(session, response), OemCryptoResult::Success);
  ASSERT_EQ(cdm->select_key(session, kid), OemCryptoResult::Success);
}

TEST_F(ServersTest, RequiredLevelForKeys) {
  for (const auto& key : title_.keys) {
    const SecurityLevel level = required_level_for(key);
    EXPECT_EQ(level,
              key.resolution.is_hd() ? SecurityLevel::L1 : SecurityLevel::L3)
        << key.resolution.label();
  }
}

}  // namespace
}  // namespace wideleak::widevine
