// SecretBytes / secure_wipe behaviour: zeroization on destruction, move
// semantics that never leave key bytes behind, compile-time log hygiene,
// and the constant_time_equal edge cases.
#include <gtest/gtest.h>

#include <array>
#include <ostream>
#include <type_traits>
#include <utility>

#include "support/secret.hpp"

namespace wideleak {
namespace {

// --- secure_wipe -----------------------------------------------------------

TEST(SecureWipe, ZeroizesRawMemory) {
  std::array<std::uint8_t, 16> buf{};
  buf.fill(0xAB);
  secure_wipe(buf.data(), buf.size());
  for (std::uint8_t b : buf) EXPECT_EQ(b, 0x00);
}

TEST(SecureWipe, WipesAndClearsVector) {
  Bytes buf(32, 0x5C);
  const auto before = detail::secure_wipe_count();
  secure_wipe(buf);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), 0u);  // shrink_to_fit released the allocation
  EXPECT_GT(detail::secure_wipe_count(), before);
}

TEST(SecureWipe, EmptyVectorDoesNotCountAsAWipe) {
  Bytes empty;
  const auto before = detail::secure_wipe_count();
  secure_wipe(empty);
  EXPECT_EQ(detail::secure_wipe_count(), before);
}

// --- zeroize-on-destruct ---------------------------------------------------

TEST(SecretBytes, DestructorWipes) {
  // Freed memory cannot be inspected directly (ASan would — correctly —
  // abort), so observe the wipe through the instrumentation counter.
  const auto before = detail::secure_wipe_count();
  {
    SecretBytes secret(Bytes(16, 0x42));
    EXPECT_EQ(secret.size(), 16u);
  }
  EXPECT_GT(detail::secure_wipe_count(), before);
}

TEST(SecretBytes, ExplicitWipeEmpties) {
  SecretBytes secret(Bytes(16, 0x42));
  secret.wipe();
  EXPECT_TRUE(secret.empty());
  EXPECT_EQ(secret.size(), 0u);
}

// --- move semantics --------------------------------------------------------

TEST(SecretBytes, MoveConstructionWipesSource) {
  SecretBytes source(Bytes{1, 2, 3, 4});
  SecretBytes dest(std::move(source));
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move): contract under test
  ASSERT_EQ(dest.size(), 4u);
  EXPECT_EQ(dest, SecretBytes(Bytes{1, 2, 3, 4}));
}

TEST(SecretBytes, MoveAssignmentWipesSourceAndOldTarget) {
  SecretBytes source(Bytes{9, 9, 9});
  SecretBytes dest(Bytes{1, 1, 1, 1});
  const auto before = detail::secure_wipe_count();
  dest = std::move(source);
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move): contract under test
  EXPECT_EQ(dest.size(), 3u);
  // The overwritten target's old contents were wiped. (The source's buffer
  // is transferred, not abandoned, so the only copy to destroy was dest's.)
  EXPECT_GE(detail::secure_wipe_count(), before + 1);
}

TEST(SecretBytes, CopyOfIsADeepCopy) {
  Bytes original{7, 7, 7, 7};
  const SecretBytes secret = SecretBytes::copy_of(original);
  original[0] = 0;
  EXPECT_EQ(secret, SecretBytes(Bytes{7, 7, 7, 7}));
}

TEST(SecretBytes, RevealExposesContents) {
  const SecretBytes secret(Bytes{0xDE, 0xAD});
  const BytesView view = secret.reveal();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 0xDE);
  EXPECT_EQ(view[1], 0xAD);
  EXPECT_EQ(secret.reveal_copy(), Bytes({0xDE, 0xAD}));
}

// --- logging is a compile error --------------------------------------------

template <typename T, typename = void>
struct is_streamable : std::false_type {};
template <typename T>
struct is_streamable<
    T, std::void_t<decltype(std::declval<std::ostream&>() << std::declval<const T&>())>>
    : std::true_type {};

static_assert(!is_streamable<SecretBytes>::value,
              "SecretBytes must not be stream-insertable (WL001 by construction)");
static_assert(is_streamable<int>::value, "trait sanity check");

// --- constant_time_equal ---------------------------------------------------

TEST(ConstantTimeEqual, EmptyBuffersAreEqual) {
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
  EXPECT_TRUE(constant_time_equal(SecretBytes(), SecretBytes()));
}

TEST(ConstantTimeEqual, EmptyVsNonEmptyDiffers) {
  EXPECT_FALSE(constant_time_equal(Bytes{}, Bytes{0x00}));
  EXPECT_FALSE(constant_time_equal(Bytes{0x00}, Bytes{}));
}

TEST(ConstantTimeEqual, LengthMismatchDiffers) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3, 4};
  EXPECT_FALSE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(b, a));
}

TEST(ConstantTimeEqual, SingleBitDifferenceDetected) {
  Bytes a(32, 0x55);
  for (std::size_t byte = 0; byte < a.size(); byte += 7) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes b = a;
      b[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(constant_time_equal(a, b)) << "byte " << byte << " bit " << bit;
    }
  }
  EXPECT_TRUE(constant_time_equal(a, Bytes(32, 0x55)));
}

TEST(ConstantTimeEqual, SecretBytesOperatorsAreConstantTimeAndHeterogeneous) {
  const SecretBytes secret(Bytes{1, 2, 3});
  const Bytes same{1, 2, 3};
  const Bytes different{1, 2, 4};
  EXPECT_EQ(secret, SecretBytes::copy_of(same));
  // SecretBytes::operator== IS the constant-time path under test:
  EXPECT_TRUE(secret == BytesView(same));      // wl-lint: ct-ok
  EXPECT_TRUE(BytesView(same) == secret);      // wl-lint: ct-ok
  EXPECT_FALSE(secret == BytesView(different));  // wl-lint: ct-ok
  EXPECT_NE(secret, SecretBytes::copy_of(different));
}

}  // namespace
}  // namespace wideleak
