# Empty compiler generated dependencies file for audit_all_apps.
# This may be replaced when dependencies are built.
