file(REMOVE_RECURSE
  "CMakeFiles/audit_all_apps.dir/audit_all_apps.cpp.o"
  "CMakeFiles/audit_all_apps.dir/audit_all_apps.cpp.o.d"
  "audit_all_apps"
  "audit_all_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_all_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
