file(REMOVE_RECURSE
  "CMakeFiles/rip_legacy_device.dir/rip_legacy_device.cpp.o"
  "CMakeFiles/rip_legacy_device.dir/rip_legacy_device.cpp.o.d"
  "rip_legacy_device"
  "rip_legacy_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rip_legacy_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
