# Empty compiler generated dependencies file for rip_legacy_device.
# This may be replaced when dependencies are built.
