# Empty compiler generated dependencies file for secure_channel_netflix.
# This may be replaced when dependencies are built.
