file(REMOVE_RECURSE
  "CMakeFiles/secure_channel_netflix.dir/secure_channel_netflix.cpp.o"
  "CMakeFiles/secure_channel_netflix.dir/secure_channel_netflix.cpp.o.d"
  "secure_channel_netflix"
  "secure_channel_netflix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_channel_netflix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
