# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_aes_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_hash_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_cmac_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_bigint_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_rsa_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/hooking_test[1]_include.cmake")
include("/root/repo/build/tests/widevine_keybox_test[1]_include.cmake")
include("/root/repo/build/tests/widevine_ladder_test[1]_include.cmake")
include("/root/repo/build/tests/widevine_oemcrypto_test[1]_include.cmake")
include("/root/repo/build/tests/widevine_servers_test[1]_include.cmake")
include("/root/repo/build/tests/wiseplay_test[1]_include.cmake")
include("/root/repo/build/tests/android_test[1]_include.cmake")
include("/root/repo/build/tests/ott_test[1]_include.cmake")
include("/root/repo/build/tests/core_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/core_audit_test[1]_include.cmake")
include("/root/repo/build/tests/core_attack_test[1]_include.cmake")
include("/root/repo/build/tests/trace_export_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
