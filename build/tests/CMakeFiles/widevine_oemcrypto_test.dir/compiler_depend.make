# Empty compiler generated dependencies file for widevine_oemcrypto_test.
# This may be replaced when dependencies are built.
