file(REMOVE_RECURSE
  "CMakeFiles/widevine_oemcrypto_test.dir/widevine_oemcrypto_test.cpp.o"
  "CMakeFiles/widevine_oemcrypto_test.dir/widevine_oemcrypto_test.cpp.o.d"
  "widevine_oemcrypto_test"
  "widevine_oemcrypto_test.pdb"
  "widevine_oemcrypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widevine_oemcrypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
