file(REMOVE_RECURSE
  "CMakeFiles/widevine_keybox_test.dir/widevine_keybox_test.cpp.o"
  "CMakeFiles/widevine_keybox_test.dir/widevine_keybox_test.cpp.o.d"
  "widevine_keybox_test"
  "widevine_keybox_test.pdb"
  "widevine_keybox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widevine_keybox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
