# Empty dependencies file for widevine_keybox_test.
# This may be replaced when dependencies are built.
