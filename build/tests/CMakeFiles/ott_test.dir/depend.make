# Empty dependencies file for ott_test.
# This may be replaced when dependencies are built.
