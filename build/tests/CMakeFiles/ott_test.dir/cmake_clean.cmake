file(REMOVE_RECURSE
  "CMakeFiles/ott_test.dir/ott_test.cpp.o"
  "CMakeFiles/ott_test.dir/ott_test.cpp.o.d"
  "ott_test"
  "ott_test.pdb"
  "ott_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ott_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
