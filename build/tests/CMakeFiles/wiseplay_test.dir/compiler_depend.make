# Empty compiler generated dependencies file for wiseplay_test.
# This may be replaced when dependencies are built.
