file(REMOVE_RECURSE
  "CMakeFiles/wiseplay_test.dir/wiseplay_test.cpp.o"
  "CMakeFiles/wiseplay_test.dir/wiseplay_test.cpp.o.d"
  "wiseplay_test"
  "wiseplay_test.pdb"
  "wiseplay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiseplay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
