# Empty compiler generated dependencies file for widevine_servers_test.
# This may be replaced when dependencies are built.
