file(REMOVE_RECURSE
  "CMakeFiles/widevine_servers_test.dir/widevine_servers_test.cpp.o"
  "CMakeFiles/widevine_servers_test.dir/widevine_servers_test.cpp.o.d"
  "widevine_servers_test"
  "widevine_servers_test.pdb"
  "widevine_servers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widevine_servers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
