# Empty compiler generated dependencies file for widevine_ladder_test.
# This may be replaced when dependencies are built.
