file(REMOVE_RECURSE
  "CMakeFiles/widevine_ladder_test.dir/widevine_ladder_test.cpp.o"
  "CMakeFiles/widevine_ladder_test.dir/widevine_ladder_test.cpp.o.d"
  "widevine_ladder_test"
  "widevine_ladder_test.pdb"
  "widevine_ladder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widevine_ladder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
