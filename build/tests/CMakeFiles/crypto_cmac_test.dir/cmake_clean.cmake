file(REMOVE_RECURSE
  "CMakeFiles/crypto_cmac_test.dir/crypto_cmac_test.cpp.o"
  "CMakeFiles/crypto_cmac_test.dir/crypto_cmac_test.cpp.o.d"
  "crypto_cmac_test"
  "crypto_cmac_test.pdb"
  "crypto_cmac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_cmac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
