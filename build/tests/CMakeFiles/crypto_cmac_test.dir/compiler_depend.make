# Empty compiler generated dependencies file for crypto_cmac_test.
# This may be replaced when dependencies are built.
