file(REMOVE_RECURSE
  "CMakeFiles/bench_q1_usage.dir/bench_q1_usage.cpp.o"
  "CMakeFiles/bench_q1_usage.dir/bench_q1_usage.cpp.o.d"
  "bench_q1_usage"
  "bench_q1_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q1_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
