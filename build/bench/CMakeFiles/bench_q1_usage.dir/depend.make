# Empty dependencies file for bench_q1_usage.
# This may be replaced when dependencies are built.
