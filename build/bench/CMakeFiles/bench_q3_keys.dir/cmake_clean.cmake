file(REMOVE_RECURSE
  "CMakeFiles/bench_q3_keys.dir/bench_q3_keys.cpp.o"
  "CMakeFiles/bench_q3_keys.dir/bench_q3_keys.cpp.o.d"
  "bench_q3_keys"
  "bench_q3_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q3_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
