# Empty dependencies file for bench_q3_keys.
# This may be replaced when dependencies are built.
