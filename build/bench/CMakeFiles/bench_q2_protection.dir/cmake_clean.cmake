file(REMOVE_RECURSE
  "CMakeFiles/bench_q2_protection.dir/bench_q2_protection.cpp.o"
  "CMakeFiles/bench_q2_protection.dir/bench_q2_protection.cpp.o.d"
  "bench_q2_protection"
  "bench_q2_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q2_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
