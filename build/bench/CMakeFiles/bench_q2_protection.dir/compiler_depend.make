# Empty compiler generated dependencies file for bench_q2_protection.
# This may be replaced when dependencies are built.
