# Empty compiler generated dependencies file for bench_ext_profile_spoof.
# This may be replaced when dependencies are built.
