file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_profile_spoof.dir/bench_ext_profile_spoof.cpp.o"
  "CMakeFiles/bench_ext_profile_spoof.dir/bench_ext_profile_spoof.cpp.o.d"
  "bench_ext_profile_spoof"
  "bench_ext_profile_spoof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_profile_spoof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
