file(REMOVE_RECURSE
  "CMakeFiles/bench_q4_legacy.dir/bench_q4_legacy.cpp.o"
  "CMakeFiles/bench_q4_legacy.dir/bench_q4_legacy.cpp.o.d"
  "bench_q4_legacy"
  "bench_q4_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q4_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
