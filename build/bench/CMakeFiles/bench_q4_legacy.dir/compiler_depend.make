# Empty compiler generated dependencies file for bench_q4_legacy.
# This may be replaced when dependencies are built.
