# Empty dependencies file for bench_poc_ripper.
# This may be replaced when dependencies are built.
