file(REMOVE_RECURSE
  "CMakeFiles/bench_poc_ripper.dir/bench_poc_ripper.cpp.o"
  "CMakeFiles/bench_poc_ripper.dir/bench_poc_ripper.cpp.o.d"
  "bench_poc_ripper"
  "bench_poc_ripper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poc_ripper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
