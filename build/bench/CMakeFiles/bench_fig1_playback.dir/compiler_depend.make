# Empty compiler generated dependencies file for bench_fig1_playback.
# This may be replaced when dependencies are built.
