# Empty dependencies file for bench_ablation_keyreuse.
# This may be replaced when dependencies are built.
