file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_keyreuse.dir/bench_ablation_keyreuse.cpp.o"
  "CMakeFiles/bench_ablation_keyreuse.dir/bench_ablation_keyreuse.cpp.o.d"
  "bench_ablation_keyreuse"
  "bench_ablation_keyreuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_keyreuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
