file(REMOVE_RECURSE
  "libwl_media.a"
)
