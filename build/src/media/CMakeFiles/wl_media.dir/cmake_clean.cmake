file(REMOVE_RECURSE
  "CMakeFiles/wl_media.dir/cenc.cpp.o"
  "CMakeFiles/wl_media.dir/cenc.cpp.o.d"
  "CMakeFiles/wl_media.dir/codec.cpp.o"
  "CMakeFiles/wl_media.dir/codec.cpp.o.d"
  "CMakeFiles/wl_media.dir/content.cpp.o"
  "CMakeFiles/wl_media.dir/content.cpp.o.d"
  "CMakeFiles/wl_media.dir/mp4.cpp.o"
  "CMakeFiles/wl_media.dir/mp4.cpp.o.d"
  "CMakeFiles/wl_media.dir/mpd.cpp.o"
  "CMakeFiles/wl_media.dir/mpd.cpp.o.d"
  "CMakeFiles/wl_media.dir/track.cpp.o"
  "CMakeFiles/wl_media.dir/track.cpp.o.d"
  "CMakeFiles/wl_media.dir/xml.cpp.o"
  "CMakeFiles/wl_media.dir/xml.cpp.o.d"
  "libwl_media.a"
  "libwl_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
