# Empty compiler generated dependencies file for wl_media.
# This may be replaced when dependencies are built.
