
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/cenc.cpp" "src/media/CMakeFiles/wl_media.dir/cenc.cpp.o" "gcc" "src/media/CMakeFiles/wl_media.dir/cenc.cpp.o.d"
  "/root/repo/src/media/codec.cpp" "src/media/CMakeFiles/wl_media.dir/codec.cpp.o" "gcc" "src/media/CMakeFiles/wl_media.dir/codec.cpp.o.d"
  "/root/repo/src/media/content.cpp" "src/media/CMakeFiles/wl_media.dir/content.cpp.o" "gcc" "src/media/CMakeFiles/wl_media.dir/content.cpp.o.d"
  "/root/repo/src/media/mp4.cpp" "src/media/CMakeFiles/wl_media.dir/mp4.cpp.o" "gcc" "src/media/CMakeFiles/wl_media.dir/mp4.cpp.o.d"
  "/root/repo/src/media/mpd.cpp" "src/media/CMakeFiles/wl_media.dir/mpd.cpp.o" "gcc" "src/media/CMakeFiles/wl_media.dir/mpd.cpp.o.d"
  "/root/repo/src/media/track.cpp" "src/media/CMakeFiles/wl_media.dir/track.cpp.o" "gcc" "src/media/CMakeFiles/wl_media.dir/track.cpp.o.d"
  "/root/repo/src/media/xml.cpp" "src/media/CMakeFiles/wl_media.dir/xml.cpp.o" "gcc" "src/media/CMakeFiles/wl_media.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
