# Empty dependencies file for wl_support.
# This may be replaced when dependencies are built.
