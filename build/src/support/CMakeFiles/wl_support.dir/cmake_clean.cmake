file(REMOVE_RECURSE
  "CMakeFiles/wl_support.dir/byte_io.cpp.o"
  "CMakeFiles/wl_support.dir/byte_io.cpp.o.d"
  "CMakeFiles/wl_support.dir/bytes.cpp.o"
  "CMakeFiles/wl_support.dir/bytes.cpp.o.d"
  "CMakeFiles/wl_support.dir/crc32.cpp.o"
  "CMakeFiles/wl_support.dir/crc32.cpp.o.d"
  "CMakeFiles/wl_support.dir/log.cpp.o"
  "CMakeFiles/wl_support.dir/log.cpp.o.d"
  "CMakeFiles/wl_support.dir/rng.cpp.o"
  "CMakeFiles/wl_support.dir/rng.cpp.o.d"
  "libwl_support.a"
  "libwl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
