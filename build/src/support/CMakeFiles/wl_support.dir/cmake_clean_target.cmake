file(REMOVE_RECURSE
  "libwl_support.a"
)
