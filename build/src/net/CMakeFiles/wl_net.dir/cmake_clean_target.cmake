file(REMOVE_RECURSE
  "libwl_net.a"
)
