file(REMOVE_RECURSE
  "CMakeFiles/wl_net.dir/http.cpp.o"
  "CMakeFiles/wl_net.dir/http.cpp.o.d"
  "CMakeFiles/wl_net.dir/network.cpp.o"
  "CMakeFiles/wl_net.dir/network.cpp.o.d"
  "CMakeFiles/wl_net.dir/proxy.cpp.o"
  "CMakeFiles/wl_net.dir/proxy.cpp.o.d"
  "CMakeFiles/wl_net.dir/tls.cpp.o"
  "CMakeFiles/wl_net.dir/tls.cpp.o.d"
  "libwl_net.a"
  "libwl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
