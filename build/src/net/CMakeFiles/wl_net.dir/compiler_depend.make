# Empty compiler generated dependencies file for wl_net.
# This may be replaced when dependencies are built.
