
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hooking/hook_bus.cpp" "src/hooking/CMakeFiles/wl_hooking.dir/hook_bus.cpp.o" "gcc" "src/hooking/CMakeFiles/wl_hooking.dir/hook_bus.cpp.o.d"
  "/root/repo/src/hooking/memory.cpp" "src/hooking/CMakeFiles/wl_hooking.dir/memory.cpp.o" "gcc" "src/hooking/CMakeFiles/wl_hooking.dir/memory.cpp.o.d"
  "/root/repo/src/hooking/process.cpp" "src/hooking/CMakeFiles/wl_hooking.dir/process.cpp.o" "gcc" "src/hooking/CMakeFiles/wl_hooking.dir/process.cpp.o.d"
  "/root/repo/src/hooking/trace.cpp" "src/hooking/CMakeFiles/wl_hooking.dir/trace.cpp.o" "gcc" "src/hooking/CMakeFiles/wl_hooking.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
