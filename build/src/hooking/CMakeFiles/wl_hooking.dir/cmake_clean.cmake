file(REMOVE_RECURSE
  "CMakeFiles/wl_hooking.dir/hook_bus.cpp.o"
  "CMakeFiles/wl_hooking.dir/hook_bus.cpp.o.d"
  "CMakeFiles/wl_hooking.dir/memory.cpp.o"
  "CMakeFiles/wl_hooking.dir/memory.cpp.o.d"
  "CMakeFiles/wl_hooking.dir/process.cpp.o"
  "CMakeFiles/wl_hooking.dir/process.cpp.o.d"
  "CMakeFiles/wl_hooking.dir/trace.cpp.o"
  "CMakeFiles/wl_hooking.dir/trace.cpp.o.d"
  "libwl_hooking.a"
  "libwl_hooking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_hooking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
