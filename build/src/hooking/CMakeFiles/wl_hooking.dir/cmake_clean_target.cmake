file(REMOVE_RECURSE
  "libwl_hooking.a"
)
