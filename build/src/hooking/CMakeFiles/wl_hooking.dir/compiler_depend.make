# Empty compiler generated dependencies file for wl_hooking.
# This may be replaced when dependencies are built.
