file(REMOVE_RECURSE
  "libwl_crypto.a"
)
