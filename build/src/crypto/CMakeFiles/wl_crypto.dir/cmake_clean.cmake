file(REMOVE_RECURSE
  "CMakeFiles/wl_crypto.dir/aes.cpp.o"
  "CMakeFiles/wl_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/wl_crypto.dir/bigint.cpp.o"
  "CMakeFiles/wl_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/wl_crypto.dir/cmac.cpp.o"
  "CMakeFiles/wl_crypto.dir/cmac.cpp.o.d"
  "CMakeFiles/wl_crypto.dir/hmac.cpp.o"
  "CMakeFiles/wl_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/wl_crypto.dir/modes.cpp.o"
  "CMakeFiles/wl_crypto.dir/modes.cpp.o.d"
  "CMakeFiles/wl_crypto.dir/rsa.cpp.o"
  "CMakeFiles/wl_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/wl_crypto.dir/sha1.cpp.o"
  "CMakeFiles/wl_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/wl_crypto.dir/sha256.cpp.o"
  "CMakeFiles/wl_crypto.dir/sha256.cpp.o.d"
  "libwl_crypto.a"
  "libwl_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
