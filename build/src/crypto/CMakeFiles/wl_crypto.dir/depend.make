# Empty dependencies file for wl_crypto.
# This may be replaced when dependencies are built.
