file(REMOVE_RECURSE
  "CMakeFiles/wl_android.dir/device.cpp.o"
  "CMakeFiles/wl_android.dir/device.cpp.o.d"
  "CMakeFiles/wl_android.dir/media_codec.cpp.o"
  "CMakeFiles/wl_android.dir/media_codec.cpp.o.d"
  "CMakeFiles/wl_android.dir/media_crypto.cpp.o"
  "CMakeFiles/wl_android.dir/media_crypto.cpp.o.d"
  "CMakeFiles/wl_android.dir/media_drm.cpp.o"
  "CMakeFiles/wl_android.dir/media_drm.cpp.o.d"
  "libwl_android.a"
  "libwl_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
