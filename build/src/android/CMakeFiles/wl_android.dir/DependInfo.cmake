
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/android/device.cpp" "src/android/CMakeFiles/wl_android.dir/device.cpp.o" "gcc" "src/android/CMakeFiles/wl_android.dir/device.cpp.o.d"
  "/root/repo/src/android/media_codec.cpp" "src/android/CMakeFiles/wl_android.dir/media_codec.cpp.o" "gcc" "src/android/CMakeFiles/wl_android.dir/media_codec.cpp.o.d"
  "/root/repo/src/android/media_crypto.cpp" "src/android/CMakeFiles/wl_android.dir/media_crypto.cpp.o" "gcc" "src/android/CMakeFiles/wl_android.dir/media_crypto.cpp.o.d"
  "/root/repo/src/android/media_drm.cpp" "src/android/CMakeFiles/wl_android.dir/media_drm.cpp.o" "gcc" "src/android/CMakeFiles/wl_android.dir/media_drm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/widevine/CMakeFiles/wl_widevine.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/wl_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/hooking/CMakeFiles/wl_hooking.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
