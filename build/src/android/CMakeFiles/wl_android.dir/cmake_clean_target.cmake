file(REMOVE_RECURSE
  "libwl_android.a"
)
