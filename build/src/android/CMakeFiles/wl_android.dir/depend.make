# Empty dependencies file for wl_android.
# This may be replaced when dependencies are built.
