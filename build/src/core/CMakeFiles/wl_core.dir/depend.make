# Empty dependencies file for wl_core.
# This may be replaced when dependencies are built.
