
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/asset_auditor.cpp" "src/core/CMakeFiles/wl_core.dir/asset_auditor.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/asset_auditor.cpp.o.d"
  "/root/repo/src/core/key_ladder_attack.cpp" "src/core/CMakeFiles/wl_core.dir/key_ladder_attack.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/key_ladder_attack.cpp.o.d"
  "/root/repo/src/core/key_usage_auditor.cpp" "src/core/CMakeFiles/wl_core.dir/key_usage_auditor.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/key_usage_auditor.cpp.o.d"
  "/root/repo/src/core/keybox_recovery.cpp" "src/core/CMakeFiles/wl_core.dir/keybox_recovery.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/keybox_recovery.cpp.o.d"
  "/root/repo/src/core/legacy_prober.cpp" "src/core/CMakeFiles/wl_core.dir/legacy_prober.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/legacy_prober.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/wl_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/network_monitor.cpp" "src/core/CMakeFiles/wl_core.dir/network_monitor.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/network_monitor.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/wl_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/report.cpp.o.d"
  "/root/repo/src/core/ripper.cpp" "src/core/CMakeFiles/wl_core.dir/ripper.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/ripper.cpp.o.d"
  "/root/repo/src/core/trace_export.cpp" "src/core/CMakeFiles/wl_core.dir/trace_export.cpp.o" "gcc" "src/core/CMakeFiles/wl_core.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ott/CMakeFiles/wl_ott.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/wl_android.dir/DependInfo.cmake"
  "/root/repo/build/src/widevine/CMakeFiles/wl_widevine.dir/DependInfo.cmake"
  "/root/repo/build/src/hooking/CMakeFiles/wl_hooking.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/wl_media.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
