file(REMOVE_RECURSE
  "CMakeFiles/wl_core.dir/asset_auditor.cpp.o"
  "CMakeFiles/wl_core.dir/asset_auditor.cpp.o.d"
  "CMakeFiles/wl_core.dir/key_ladder_attack.cpp.o"
  "CMakeFiles/wl_core.dir/key_ladder_attack.cpp.o.d"
  "CMakeFiles/wl_core.dir/key_usage_auditor.cpp.o"
  "CMakeFiles/wl_core.dir/key_usage_auditor.cpp.o.d"
  "CMakeFiles/wl_core.dir/keybox_recovery.cpp.o"
  "CMakeFiles/wl_core.dir/keybox_recovery.cpp.o.d"
  "CMakeFiles/wl_core.dir/legacy_prober.cpp.o"
  "CMakeFiles/wl_core.dir/legacy_prober.cpp.o.d"
  "CMakeFiles/wl_core.dir/monitor.cpp.o"
  "CMakeFiles/wl_core.dir/monitor.cpp.o.d"
  "CMakeFiles/wl_core.dir/network_monitor.cpp.o"
  "CMakeFiles/wl_core.dir/network_monitor.cpp.o.d"
  "CMakeFiles/wl_core.dir/report.cpp.o"
  "CMakeFiles/wl_core.dir/report.cpp.o.d"
  "CMakeFiles/wl_core.dir/ripper.cpp.o"
  "CMakeFiles/wl_core.dir/ripper.cpp.o.d"
  "CMakeFiles/wl_core.dir/trace_export.cpp.o"
  "CMakeFiles/wl_core.dir/trace_export.cpp.o.d"
  "libwl_core.a"
  "libwl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
