file(REMOVE_RECURSE
  "libwl_core.a"
)
