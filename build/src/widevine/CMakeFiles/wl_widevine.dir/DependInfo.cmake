
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/widevine/cdm.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/cdm.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/cdm.cpp.o.d"
  "/root/repo/src/widevine/key_ladder.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/key_ladder.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/key_ladder.cpp.o.d"
  "/root/repo/src/widevine/keybox.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/keybox.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/keybox.cpp.o.d"
  "/root/repo/src/widevine/license_server.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/license_server.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/license_server.cpp.o.d"
  "/root/repo/src/widevine/oemcrypto.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/oemcrypto.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/oemcrypto.cpp.o.d"
  "/root/repo/src/widevine/protocol.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/protocol.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/protocol.cpp.o.d"
  "/root/repo/src/widevine/provisioning_server.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/provisioning_server.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/provisioning_server.cpp.o.d"
  "/root/repo/src/widevine/revocation.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/revocation.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/revocation.cpp.o.d"
  "/root/repo/src/widevine/tee.cpp" "src/widevine/CMakeFiles/wl_widevine.dir/tee.cpp.o" "gcc" "src/widevine/CMakeFiles/wl_widevine.dir/tee.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/wl_media.dir/DependInfo.cmake"
  "/root/repo/build/src/hooking/CMakeFiles/wl_hooking.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
