file(REMOVE_RECURSE
  "libwl_widevine.a"
)
