file(REMOVE_RECURSE
  "CMakeFiles/wl_widevine.dir/cdm.cpp.o"
  "CMakeFiles/wl_widevine.dir/cdm.cpp.o.d"
  "CMakeFiles/wl_widevine.dir/key_ladder.cpp.o"
  "CMakeFiles/wl_widevine.dir/key_ladder.cpp.o.d"
  "CMakeFiles/wl_widevine.dir/keybox.cpp.o"
  "CMakeFiles/wl_widevine.dir/keybox.cpp.o.d"
  "CMakeFiles/wl_widevine.dir/license_server.cpp.o"
  "CMakeFiles/wl_widevine.dir/license_server.cpp.o.d"
  "CMakeFiles/wl_widevine.dir/oemcrypto.cpp.o"
  "CMakeFiles/wl_widevine.dir/oemcrypto.cpp.o.d"
  "CMakeFiles/wl_widevine.dir/protocol.cpp.o"
  "CMakeFiles/wl_widevine.dir/protocol.cpp.o.d"
  "CMakeFiles/wl_widevine.dir/provisioning_server.cpp.o"
  "CMakeFiles/wl_widevine.dir/provisioning_server.cpp.o.d"
  "CMakeFiles/wl_widevine.dir/revocation.cpp.o"
  "CMakeFiles/wl_widevine.dir/revocation.cpp.o.d"
  "CMakeFiles/wl_widevine.dir/tee.cpp.o"
  "CMakeFiles/wl_widevine.dir/tee.cpp.o.d"
  "libwl_widevine.a"
  "libwl_widevine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_widevine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
