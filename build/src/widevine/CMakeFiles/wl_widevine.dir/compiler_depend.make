# Empty compiler generated dependencies file for wl_widevine.
# This may be replaced when dependencies are built.
