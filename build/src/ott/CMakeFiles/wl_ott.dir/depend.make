# Empty dependencies file for wl_ott.
# This may be replaced when dependencies are built.
