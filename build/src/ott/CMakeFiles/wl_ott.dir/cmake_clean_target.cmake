file(REMOVE_RECURSE
  "libwl_ott.a"
)
