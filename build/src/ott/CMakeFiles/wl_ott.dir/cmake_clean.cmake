file(REMOVE_RECURSE
  "CMakeFiles/wl_ott.dir/app.cpp.o"
  "CMakeFiles/wl_ott.dir/app.cpp.o.d"
  "CMakeFiles/wl_ott.dir/backend.cpp.o"
  "CMakeFiles/wl_ott.dir/backend.cpp.o.d"
  "CMakeFiles/wl_ott.dir/catalog.cpp.o"
  "CMakeFiles/wl_ott.dir/catalog.cpp.o.d"
  "CMakeFiles/wl_ott.dir/cdn.cpp.o"
  "CMakeFiles/wl_ott.dir/cdn.cpp.o.d"
  "CMakeFiles/wl_ott.dir/custom_drm.cpp.o"
  "CMakeFiles/wl_ott.dir/custom_drm.cpp.o.d"
  "CMakeFiles/wl_ott.dir/ecosystem.cpp.o"
  "CMakeFiles/wl_ott.dir/ecosystem.cpp.o.d"
  "CMakeFiles/wl_ott.dir/playback.cpp.o"
  "CMakeFiles/wl_ott.dir/playback.cpp.o.d"
  "libwl_ott.a"
  "libwl_ott.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_ott.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
