
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ott/app.cpp" "src/ott/CMakeFiles/wl_ott.dir/app.cpp.o" "gcc" "src/ott/CMakeFiles/wl_ott.dir/app.cpp.o.d"
  "/root/repo/src/ott/backend.cpp" "src/ott/CMakeFiles/wl_ott.dir/backend.cpp.o" "gcc" "src/ott/CMakeFiles/wl_ott.dir/backend.cpp.o.d"
  "/root/repo/src/ott/catalog.cpp" "src/ott/CMakeFiles/wl_ott.dir/catalog.cpp.o" "gcc" "src/ott/CMakeFiles/wl_ott.dir/catalog.cpp.o.d"
  "/root/repo/src/ott/cdn.cpp" "src/ott/CMakeFiles/wl_ott.dir/cdn.cpp.o" "gcc" "src/ott/CMakeFiles/wl_ott.dir/cdn.cpp.o.d"
  "/root/repo/src/ott/custom_drm.cpp" "src/ott/CMakeFiles/wl_ott.dir/custom_drm.cpp.o" "gcc" "src/ott/CMakeFiles/wl_ott.dir/custom_drm.cpp.o.d"
  "/root/repo/src/ott/ecosystem.cpp" "src/ott/CMakeFiles/wl_ott.dir/ecosystem.cpp.o" "gcc" "src/ott/CMakeFiles/wl_ott.dir/ecosystem.cpp.o.d"
  "/root/repo/src/ott/playback.cpp" "src/ott/CMakeFiles/wl_ott.dir/playback.cpp.o" "gcc" "src/ott/CMakeFiles/wl_ott.dir/playback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/android/CMakeFiles/wl_android.dir/DependInfo.cmake"
  "/root/repo/build/src/widevine/CMakeFiles/wl_widevine.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/wl_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/hooking/CMakeFiles/wl_hooking.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
