# Empty compiler generated dependencies file for wl_wiseplay.
# This may be replaced when dependencies are built.
