file(REMOVE_RECURSE
  "libwl_wiseplay.a"
)
