file(REMOVE_RECURSE
  "CMakeFiles/wl_wiseplay.dir/wiseplay.cpp.o"
  "CMakeFiles/wl_wiseplay.dir/wiseplay.cpp.o.d"
  "libwl_wiseplay.a"
  "libwl_wiseplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_wiseplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
