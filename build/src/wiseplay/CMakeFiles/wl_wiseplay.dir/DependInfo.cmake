
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wiseplay/wiseplay.cpp" "src/wiseplay/CMakeFiles/wl_wiseplay.dir/wiseplay.cpp.o" "gcc" "src/wiseplay/CMakeFiles/wl_wiseplay.dir/wiseplay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wl_support.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/wl_media.dir/DependInfo.cmake"
  "/root/repo/build/src/hooking/CMakeFiles/wl_hooking.dir/DependInfo.cmake"
  "/root/repo/build/src/widevine/CMakeFiles/wl_widevine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
