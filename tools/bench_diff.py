#!/usr/bin/env python3
"""Regression gate over support::BenchReport JSON files.

Usage:
    bench_diff.py [--tolerance PCT] baseline.json current.json

Compares two benchmark reports produced by support::BenchReport (the fixed
schema emitted by bench_dataplane and bench_poc_ripper) op by op:

  * a checksum mismatch is ALWAYS fatal -- bit-identity of the operation's
    output is the contract, no tolerance applies;
  * an op present in the baseline but missing from the current report is
    fatal (a silently dropped measurement looks like a passing gate);
  * a throughput (mb_per_s) drop of more than --tolerance percent below
    the baseline is fatal; improvements and new ops are reported as notes.

Exit status: 0 clean, 1 regression, 2 usage/parse error.
Stdlib only -- CI runs this with a bare python3.
"""

import argparse
import json
import sys


def die(message):
    print(message, file=sys.stderr)
    raise SystemExit(2)


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        die(f"bench_diff: cannot read {path}: {exc}")
    if not isinstance(report, dict) or "entries" not in report:
        die(f"bench_diff: {path}: not a BenchReport (missing 'entries')")
    ops = {}
    for entry in report["entries"]:
        missing = {"op", "bytes", "ns", "mb_per_s", "checksum"} - set(entry)
        if missing:
            die(f"bench_diff: {path}: entry missing keys {sorted(missing)}: {entry}")
        if entry["op"] in ops:
            die(f"bench_diff: {path}: duplicate op '{entry['op']}'")
        ops[entry["op"]] = entry
    return report.get("name", "?"), ops


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="max allowed throughput drop, percent (default 10)")
    parser.add_argument("baseline")
    parser.add_argument("current")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    base_name, base = load_report(args.baseline)
    cur_name, cur = load_report(args.current)
    if base_name != cur_name:
        print(f"bench_diff: note: report names differ ({base_name!r} vs {cur_name!r})")

    failures = 0
    for op, base_entry in sorted(base.items()):
        cur_entry = cur.get(op)
        if cur_entry is None:
            print(f"FAIL {op}: present in baseline, missing from current report")
            failures += 1
            continue
        if base_entry["checksum"] != cur_entry["checksum"]:
            print(f"FAIL {op}: checksum {base_entry['checksum']} -> "
                  f"{cur_entry['checksum']} (output no longer bit-identical)")
            failures += 1
            continue
        base_mbps = float(base_entry["mb_per_s"])
        cur_mbps = float(cur_entry["mb_per_s"])
        if base_mbps <= 0.0:
            print(f"  ok  {op}: baseline has no throughput signal, checksum matches")
            continue
        delta_pct = (cur_mbps - base_mbps) / base_mbps * 100.0
        if delta_pct < -args.tolerance:
            print(f"FAIL {op}: {base_mbps:.3f} -> {cur_mbps:.3f} MB/s "
                  f"({delta_pct:+.1f}% < -{args.tolerance:g}% tolerance)")
            failures += 1
        else:
            print(f"  ok  {op}: {base_mbps:.3f} -> {cur_mbps:.3f} MB/s ({delta_pct:+.1f}%)")

    for op in sorted(set(cur) - set(base)):
        print(f"bench_diff: note: new op '{op}' (no baseline to gate against)")

    if failures:
        print(f"bench_diff: {failures} regression(s) "
              f"({args.baseline} vs {args.current}, tolerance {args.tolerance:g}%)")
        return 1
    print(f"bench_diff: clean ({len(base)} op(s) gated, tolerance {args.tolerance:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
