#!/usr/bin/env python3
"""Regression gate over support::BenchReport JSON files.

Usage:
    bench_diff.py [--tolerance PCT] baseline.json current.json
    bench_diff.py [--tolerance PCT] --baseline-dir DIR current.json [...]

Compares benchmark reports produced by support::BenchReport (the fixed
schema emitted by the bench_* binaries) op by op:

  * a checksum mismatch is ALWAYS fatal -- bit-identity of the operation's
    output is the contract, no tolerance applies;
  * an op present in the baseline but missing from the current report is
    fatal (a silently dropped measurement looks like a passing gate);
  * a throughput (mb_per_s) drop of more than --tolerance percent below
    the baseline is fatal; improvements and new ops are reported as notes.

With --baseline-dir, each current report is diffed against the committed
snapshot of the same basename inside DIR (the bench/baselines/ layout); a
missing snapshot or report is a clear error, never a stack trace.

Exit status: 0 clean, 1 regression, 2 usage/parse error.
Stdlib only -- CI runs this with a bare python3.
"""

import argparse
import json
import os
import sys


def die(message):
    print(message, file=sys.stderr)
    raise SystemExit(2)


def load_report(path, role):
    if not os.path.exists(path):
        die(f"bench_diff: {role} report {path} does not exist"
            + (" (regenerate it with the matching bench binary and commit it)"
               if role == "baseline" else " (did the bench step run?)"))
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        die(f"bench_diff: cannot read {role} report {path}: {exc}")
    if not isinstance(report, dict) or "entries" not in report:
        die(f"bench_diff: {path}: not a BenchReport (missing 'entries')")
    ops = {}
    for entry in report["entries"]:
        missing = {"op", "bytes", "ns", "mb_per_s", "checksum"} - set(entry)
        if missing:
            die(f"bench_diff: {path}: entry missing keys {sorted(missing)}: {entry}")
        if entry["op"] in ops:
            die(f"bench_diff: {path}: duplicate op '{entry['op']}'")
        ops[entry["op"]] = entry
    return report.get("name", "?"), ops


def diff_pair(baseline_path, current_path, tolerance):
    """Diff one (baseline, current) pair; returns the failure count."""
    base_name, base = load_report(baseline_path, "baseline")
    cur_name, cur = load_report(current_path, "current")
    if base_name != cur_name:
        print(f"bench_diff: note: report names differ ({base_name!r} vs {cur_name!r})")

    failures = 0
    for op, base_entry in sorted(base.items()):
        cur_entry = cur.get(op)
        if cur_entry is None:
            print(f"FAIL {op}: present in baseline, missing from current report")
            failures += 1
            continue
        if base_entry["checksum"] != cur_entry["checksum"]:
            print(f"FAIL {op}: checksum {base_entry['checksum']} -> "
                  f"{cur_entry['checksum']} (output no longer bit-identical)")
            failures += 1
            continue
        base_mbps = float(base_entry["mb_per_s"])
        cur_mbps = float(cur_entry["mb_per_s"])
        if base_mbps <= 0.0:
            print(f"  ok  {op}: baseline has no throughput signal, checksum matches")
            continue
        delta_pct = (cur_mbps - base_mbps) / base_mbps * 100.0
        if delta_pct < -tolerance:
            print(f"FAIL {op}: {base_mbps:.3f} -> {cur_mbps:.3f} MB/s "
                  f"({delta_pct:+.1f}% < -{tolerance:g}% tolerance)")
            failures += 1
        else:
            print(f"  ok  {op}: {base_mbps:.3f} -> {cur_mbps:.3f} MB/s ({delta_pct:+.1f}%)")

    for op in sorted(set(cur) - set(base)):
        print(f"bench_diff: note: new op '{op}' (no baseline to gate against)")

    if failures:
        print(f"bench_diff: {failures} regression(s) "
              f"({baseline_path} vs {current_path}, tolerance {tolerance:g}%)")
    else:
        print(f"bench_diff: clean ({len(base)} op(s) gated, tolerance {tolerance:g}%)")
    return failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="max allowed throughput drop, percent (default 10)")
    parser.add_argument("--baseline-dir", metavar="DIR",
                        help="diff each report against DIR/<its basename> "
                             "instead of naming the baseline explicitly")
    parser.add_argument("reports", nargs="+",
                        help="baseline.json current.json, or (with "
                             "--baseline-dir) one or more current reports")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    if args.baseline_dir:
        if not os.path.isdir(args.baseline_dir):
            die(f"bench_diff: baseline dir {args.baseline_dir} does not exist")
        failures = 0
        for current in args.reports:
            baseline = os.path.join(args.baseline_dir, os.path.basename(current))
            print(f"== {os.path.basename(current)} vs {baseline} ==")
            failures += diff_pair(baseline, current, args.tolerance)
        return 1 if failures else 0

    if len(args.reports) != 2:
        parser.error("expected exactly: baseline.json current.json "
                     "(or use --baseline-dir)")
    return 1 if diff_pair(args.reports[0], args.reports[1], args.tolerance) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
