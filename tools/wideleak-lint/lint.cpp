// Pass 1 of the analyzer: the lexical rules (WL001–WL006) plus the
// lint_source driver that stitches all passes together. The tokenizer lives
// in scan.cpp; the symbol index and the dataflow rules (WL007–WL009) live in
// analysis.cpp; the emitters and baseline live in output.cpp.
#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "scan.hpp"

namespace wideleak::lint {

using internal::match_paren;
using internal::NotesMap;
using internal::parse_notes;
using internal::Scan;
using internal::scan_source;
using internal::statement_anchor_line;
using internal::suppressed_at;
using internal::Token;

namespace {

// ---------------------------------------------------------------------------
// Identifier classification
// ---------------------------------------------------------------------------

std::vector<std::string> segments(const std::string& ident) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : ident) {
    if (c == '_') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

const std::set<std::string> kSecretSegments = {"key", "keys", "keybox", "secret", "secrets"};

// Segments that mark an identifier as *about* keys without *being* key
// material: key ids, wrapped/encrypted forms, server-opaque fields,
// registries, public halves, counts/bounds, and derivation machinery.
const std::set<std::string> kSecretExclusions = {
    "id",    "ids",   "kid",    "kids",  "wrapped", "wrap",  "public", "request",
    "response", "data", "count", "hex",  "token",   "tokens", "view",  "usage",
    "store", "ladder", "policy", "info", "name",    "size",  "slot",   "slots",
    "max",   "min",   "num"};

bool is_secretish(const std::string& ident) {
  bool secret = false;
  for (const std::string& seg : segments(ident)) {
    if (kSecretSegments.count(seg)) secret = true;
    if (kSecretExclusions.count(seg)) return false;
  }
  return secret;
}

const std::set<std::string> kMacSegments = {"mac",  "macs", "signature", "signatures",
                                            "sig",  "sigs", "tag",       "tags",
                                            "digest", "digests", "hmac", "cmac"};

bool is_macish(const std::string& ident) {
  for (const std::string& seg : segments(ident)) {
    if (kMacSegments.count(seg)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

/// Terminal identifiers in [begin, end): for an access path `a.b->c(...)`
/// only the final component counts, so `hex_encode(key.kid)` judges `kid`,
/// not `key`, while `keys.enc_key` judges `enc_key`.
std::vector<std::size_t> terminal_idents(const std::vector<Token>& toks, std::size_t begin,
                                         std::size_t end) {
  std::vector<std::size_t> out;
  for (std::size_t i = begin; i < end; ++i) {
    if (!toks[i].is_ident) continue;
    std::size_t next = i + 1;
    // Skip a call's argument list and/or subscripts: `keys[0].kid` judges
    // `kid`, not `keys`, just as `keys.at(0).kid` would.
    while (next < end) {
      if (toks[next].text == "(") {
        const std::size_t close = match_paren(toks, next);
        next = (close < end) ? close + 1 : end;
      } else if (toks[next].text == "[") {
        int depth = 0;
        while (next < end) {
          if (toks[next].text == "[") ++depth;
          if (toks[next].text == "]" && --depth == 0) break;
          ++next;
        }
        if (next < end) ++next;
      } else {
        break;
      }
    }
    if (next < end && (toks[next].text == "." || toks[next].text == "->" ||
                       toks[next].text == "::")) {
      continue;  // a non-terminal path component (or a namespace qualifier)
    }
    out.push_back(i);
  }
  return out;
}

/// Identifiers relevant to a byte-wise comparison call (memcmp/std::equal):
/// chain roots and terminals, but not middle components. `signature.data()`
/// must judge `signature` — the buffer whose contents feed the compare —
/// unlike the flow rules, where the terminal component wins.
std::vector<std::size_t> comparison_idents(const std::vector<Token>& toks, std::size_t begin,
                                           std::size_t end) {
  static const std::set<std::string> kAccess = {".", "->", "::"};
  std::vector<std::size_t> out;
  for (std::size_t i = begin; i < end; ++i) {
    if (!toks[i].is_ident) continue;
    const bool prev_access = i > begin && kAccess.count(toks[i - 1].text) > 0;
    std::size_t next = i + 1;
    if (next < end && toks[next].text == "(") {
      const std::size_t close = match_paren(toks, next);
      next = (close < end) ? close + 1 : end;
    }
    const bool next_access = next < end && kAccess.count(toks[next].text) > 0;
    if (prev_access && next_access) continue;  // middle of a chain
    out.push_back(i);
  }
  return out;
}

/// Terminal idents of an `==`/`!=` operand. Nested paren groups (call
/// arguments) are skipped — arguments are inputs to a computation, not the
/// value being compared. Each terminal records whether it is a call.
struct OperandIdent {
  std::size_t index;
  bool is_call;
};

std::vector<OperandIdent> operand_terminals(const std::vector<Token>& toks, std::size_t begin,
                                            std::size_t end) {
  std::vector<OperandIdent> out;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].text == "(") {  // skip call/grouping contents wholesale
      const std::size_t close = match_paren(toks, i);
      if (close >= end) break;
      i = close;
      continue;
    }
    if (!toks[i].is_ident) continue;
    std::size_t next = i + 1;
    bool is_call = false;
    if (next < end && toks[next].text == "(") {
      is_call = true;
      const std::size_t close = match_paren(toks, next);
      next = (close < end) ? close + 1 : end;
    }
    if (next < end && (toks[next].text == "." || toks[next].text == "->" ||
                       toks[next].text == "::")) {
      continue;
    }
    out.push_back({i, is_call});
  }
  return out;
}

bool all_caps_constant(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

/// An operand that can only ever be a length, position, sentinel, literal or
/// enum-style constant: comparing *anything* against it is not a
/// content-compare of two secret buffers.
bool operand_is_benign(const std::vector<Token>& toks,
                       const std::vector<OperandIdent>& terminals) {
  static const std::set<std::string> kBenign = {"size",   "length", "empty", "count",
                                                "begin",  "end",    "cbegin", "cend",
                                                "rbegin", "rend",   "npos",  "true",
                                                "false",  "nullptr"};
  for (const OperandIdent& t : terminals) {
    const std::string& name = toks[t.index].text;
    if (!kBenign.count(name) && !all_caps_constant(name)) return false;
  }
  return true;  // no idents at all (pure literals) is benign too
}

bool stop_token(const std::string& t) {
  static const std::set<std::string> kStops = {";", "{", "}", ",", "&&", "||", "return",
                                               "=",  "?",  ":", "<<", ">>"};
  return kStops.count(t) > 0;
}

/// Operand span to the left of the operator at `op` (exclusive): walks back
/// over balanced parens until a stop token or an unbalanced `(`.
std::size_t operand_begin(const std::vector<Token>& toks, std::size_t op) {
  std::size_t i = op;
  while (i > 0) {
    const std::string& t = toks[i - 1].text;
    if (t == ")") {  // skip back over the balanced group
      int depth = 0;
      std::size_t j = i - 1;
      while (true) {
        if (toks[j].text == ")") ++depth;
        if (toks[j].text == "(") {
          --depth;
          if (depth == 0) break;
        }
        if (j == 0) break;
        --j;
      }
      i = j;
      continue;
    }
    if (t == "(" || stop_token(t)) break;
    --i;
  }
  return i;
}

/// Operand span to the right of the operator at `op` (exclusive of `op`).
std::size_t operand_end(const std::vector<Token>& toks, std::size_t op) {
  std::size_t i = op + 1;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (t == "(") {
      i = match_paren(toks, i);
      if (i >= toks.size()) return toks.size();
      ++i;
      continue;
    }
    if (t == ")" || stop_token(t)) break;
    ++i;
  }
  return i;
}

bool scoped_for_wl003(const std::string& path) {
  return path.find("src/crypto") != std::string::npos ||
         path.find("src/widevine") != std::string::npos ||
         path.find("src/ott/custom_drm") != std::string::npos;
}

// WL006 polices the data plane: the directories whose functions sit on the
// per-sample decrypt path, where a by-value Bytes parameter is a heap copy
// per call.
bool scoped_for_wl006(const std::string& path) {
  return path.find("src/media") != std::string::npos ||
         path.find("src/crypto") != std::string::npos;
}

// Tokens inside a parameter list that mark it as a function declaration
// rather than a constructor-call argument list.
bool looks_like_param_list(const std::vector<Token>& toks, std::size_t open,
                           std::size_t close) {
  if (close == open + 1) return true;  // `()` — no-arg accessor
  static const std::set<std::string> kTypeish = {
      "const",  "BytesView", "Bytes",  "SecretBytes", "std",    "string", "size_t",
      "uint8_t", "uint16_t", "uint32_t", "uint64_t",  "int",    "bool",   "char",
      "auto",   "void",      "double", "float",       "KeyId",  "&",      "*"};
  for (std::size_t i = open + 1; i < close; ++i) {
    if (kTypeish.count(toks[i].text)) return true;
  }
  return false;
}

struct Linter {
  const std::string& path;
  const std::vector<Token>& toks;
  const NotesMap& notes;
  const Options& options;
  std::vector<Violation> violations;

  /// Suppression lookup: the key may sit on the flagged line, the line above
  /// it, or above the start of the (possibly multi-line) declaration /
  /// statement the flagged token belongs to.
  bool suppressed(const char* key, std::size_t tok_idx) const {
    return suppressed_at(notes, key, toks[tok_idx].line,
                         statement_anchor_line(toks, tok_idx));
  }

  void flag(int line, const char* rule, std::string message) {
    violations.push_back({path, line, rule, std::move(message)});
  }

  // -- WL001: secrets flowing into log/encode sinks -------------------------
  void check_wl001() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is_ident) continue;
      const std::string& name = toks[i].text;
      const bool call_sink =
          (name == "hex_encode" || name == "base64_encode" || name == "to_string") &&
          i + 1 < toks.size() && toks[i + 1].text == "(" &&
          (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->"));
      const bool log_sink = name == "WL_LOG";
      if (!call_sink && !log_sink) continue;

      std::size_t begin, end;
      if (call_sink) {
        begin = i + 2;
        end = match_paren(toks, i + 1);
      } else {
        // Whole statement: WL_LOG(...) << a << b << ...;
        begin = i + 1;
        end = begin;
        int depth = 0;
        while (end < toks.size()) {
          if (toks[end].text == "(") ++depth;
          if (toks[end].text == ")") --depth;
          if (toks[end].text == ";" && depth <= 0) break;
          ++end;
        }
      }
      for (std::size_t t : terminal_idents(toks, begin, end)) {
        const std::string& arg = toks[t].text;
        if (!is_secretish(arg) && arg != "reveal" && arg != "reveal_copy") continue;
        if (suppressed("log-ok", t) || suppressed("log-ok", i)) continue;
        flag(toks[t].line, "WL001",
             "secret '" + arg + "' flows into " + (log_sink ? "WL_LOG" : name) +
                 " (CWE-532: key material in log/encode output)");
      }
    }
  }

  // -- WL002: variable-time comparison of authentication material -----------
  void check_operand_pair(std::size_t op, const std::string& what) {
    const std::size_t lbegin = operand_begin(toks, op);
    const std::size_t rend = operand_end(toks, op);
    const std::vector<OperandIdent> lhs = operand_terminals(toks, lbegin, op);
    const std::vector<OperandIdent> rhs = operand_terminals(toks, op + 1, rend);
    // Comparisons against lengths, iterators, sentinels, literals or enum
    // constants compare *state*, not buffer contents.
    if (operand_is_benign(toks, lhs) || operand_is_benign(toks, rhs)) return;
    std::vector<OperandIdent> ids = lhs;
    ids.insert(ids.end(), rhs.begin(), rhs.end());
    for (const OperandIdent& t : ids) {
      // A call result has no stable name to judge; the named buffer on the
      // other side (if any) carries the signal.
      if (t.is_call) continue;
      if (!is_macish(toks[t.index].text) && !is_secretish(toks[t.index].text)) continue;
      if (suppressed("ct-ok", op)) continue;
      flag(toks[op].line, "WL002",
           what + " compares '" + toks[t.index].text +
               "' in variable time; use constant_time_equal (CWE-208)");
      return;  // one finding per comparison
    }
  }

  void check_wl002() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if ((t == "==" || t == "!=") && i > 0 && toks[i - 1].text != "operator") {
        check_operand_pair(i, "operator" + t);
        continue;
      }
      if (!toks[i].is_ident) continue;
      const bool is_memcmp = t == "memcmp";
      const bool is_std_equal = t == "equal" && i >= 2 && toks[i - 1].text == "::" &&
                                toks[i - 2].text == "std";
      if ((is_memcmp || is_std_equal) && i + 1 < toks.size() && toks[i + 1].text == "(") {
        const std::size_t close = match_paren(toks, i + 1);
        for (std::size_t id : comparison_idents(toks, i + 2, close)) {
          if (!is_macish(toks[id].text) && !is_secretish(toks[id].text)) continue;
          if (suppressed("ct-ok", i)) break;
          flag(toks[i].line, "WL002",
               std::string(is_memcmp ? "memcmp" : "std::equal") + " over '" +
                   toks[id].text + "' is variable time; use constant_time_equal (CWE-208)");
          break;
        }
      }
    }
  }

  // -- WL003 / WL004: raw Bytes declarations and by-value secret returns ----
  void check_decls() {
    const bool scoped = options.assume_scoped || scoped_for_wl003(path);
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is_ident || toks[i].text != "Bytes") continue;
      // Walk to the declared name, noting whether we crossed a ref/pointer
      // (references do not own the secret — the owning declaration is the
      // one that gets flagged).
      std::size_t j = i + 1;
      bool by_ref = false;
      while (j < toks.size()) {
        const std::string& t = toks[j].text;
        if (t == "&" || t == "&&" || t == "*") {
          by_ref = true;
          ++j;
        } else if (t == ">" || t == ">>" || t == "const") {
          ++j;
        } else {
          break;
        }
      }
      if (j >= toks.size() || !toks[j].is_ident) continue;
      // `Bytes Keybox::serialize()` — the ident after the return type is a
      // class qualifier, not a declared name.
      if (j + 1 < toks.size() && toks[j + 1].text == "::") continue;
      const std::string& name = toks[j].text;
      if (!is_secretish(name)) continue;

      const bool is_call = j + 1 < toks.size() && toks[j + 1].text == "(";
      if (is_call) {
        const std::size_t close = match_paren(toks, j + 1);
        if (looks_like_param_list(toks, j + 1, close)) {
          // Function declaration returning Bytes (or a Bytes-bearing value).
          if (by_ref) continue;  // by-reference accessors are WL003's problem
          if (suppressed("reveal-ok", j)) continue;
          flag(toks[j].line, "WL004",
               "'" + name +
                   "' returns secret bytes by value without a '// wl-lint: "
                   "reveal-ok' annotation (CWE-200)");
          continue;
        }
        // else: a constructor-style variable declaration — falls through.
      }
      if (!scoped || by_ref) continue;
      if (suppressed("raw-bytes-ok", j)) continue;
      flag(toks[j].line, "WL003",
           "raw Bytes declaration '" + name +
               "' holds key material; use wideleak::SecretBytes (CWE-922)");
    }
  }

  // -- WL006: by-value Bytes parameters on data-plane functions -------------
  void check_wl006() {
    if (!options.assume_scoped && !scoped_for_wl006(path)) return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is_ident || toks[i].text != "Bytes") continue;
      // Parameter position: `(` or `,` immediately before, allowing a
      // namespace qualifier and/or `const` in between.
      std::size_t p = i;
      if (p >= 2 && toks[p - 1].text == "::" && toks[p - 2].is_ident) p -= 2;
      if (p >= 1 && toks[p - 1].text == "const") --p;
      if (p == 0) continue;
      const std::string& before = toks[p - 1].text;
      if (before != "(" && before != ",") continue;
      // `Bytes name` with the name terminating the parameter. A reference,
      // pointer, constructor call or brace-init fails the ident check here,
      // so `const Bytes&`, `Bytes&&` and `Bytes(x)` never fire.
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "const") ++j;  // east-const spelling
      if (j >= toks.size() || !toks[j].is_ident) continue;
      if (j + 1 >= toks.size()) continue;
      const std::string& after = toks[j + 1].text;
      if (after != "," && after != ")" && after != "=") continue;
      if (suppressed("byval-ok", i)) continue;
      flag(toks[i].line, "WL006",
           "parameter '" + toks[j].text +
               "' takes Bytes by value — a heap copy per call on the data "
               "plane; take BytesView (or Bytes&& when ownership transfers)");
    }
  }

  // -- WL005: catch-all handlers that swallow the error ---------------------
  void check_wl005() {
    for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
      if (!toks[i].is_ident || toks[i].text != "catch") continue;
      if (toks[i + 1].text != "(" || toks[i + 2].text != "..." ||
          toks[i + 3].text != ")" || toks[i + 4].text != "{") {
        continue;  // typed handlers name what they expect; only `...` hides it
      }
      // Brace-match the handler body.
      int depth = 0;
      std::size_t close = i + 4;
      for (; close < toks.size(); ++close) {
        if (toks[close].text == "{") ++depth;
        if (toks[close].text == "}") {
          --depth;
          if (depth == 0) break;
        }
      }
      bool surfaces_error = false;
      for (std::size_t j = i + 5; j < close; ++j) {
        const std::string& t = toks[j].text;
        if (t == "throw" || t == "rethrow_exception" || t == "WL_LOG" ||
            t == "log_line") {
          surfaces_error = true;
          break;
        }
      }
      if (surfaces_error) continue;
      if (suppressed("catch-ok", i)) continue;
      flag(toks[i].line, "WL005",
           "catch (...) swallows the error without logging or rethrowing "
           "(CWE-391); log it, rethrow, or annotate '// wl-lint: catch-ok'");
    }
  }
};

}  // namespace

std::vector<Violation> lint_source(const std::string& path, const std::string& source,
                                   const Options& options) {
  const Scan scan = scan_source(source);
  const NotesMap notes = parse_notes(scan.comments);
  Linter linter{path, scan.tokens, notes, options, {}};
  linter.check_wl001();
  linter.check_wl002();
  linter.check_decls();
  linter.check_wl005();
  linter.check_wl006();

  // The dataflow passes need the cross-TU symbol index; when the caller did
  // not supply one (single-file lint, fixtures), the file indexes itself.
  SymbolIndex local_index;
  const SymbolIndex* index = options.index;
  if (!index) {
    local_index = build_symbol_index({{path, source}});
    index = &local_index;
  }
  run_dataflow_passes(path, scan, notes, options, *index, &linter.violations);

  if (!options.disabled_rules.empty()) {
    linter.violations.erase(
        std::remove_if(linter.violations.begin(), linter.violations.end(),
                       [&](const Violation& v) {
                         return options.disabled_rules.count(v.rule) > 0;
                       }),
        linter.violations.end());
  }

  std::sort(linter.violations.begin(), linter.violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
            });
  // One report per (line, rule): overlapping detectors (a sink inside a
  // WL_LOG statement, a memcmp inside an ==) should not double-count.
  linter.violations.erase(
      std::unique(linter.violations.begin(), linter.violations.end(),
                  [](const Violation& a, const Violation& b) {
                    return a.file == b.file && a.line == b.line && a.rule == b.rule;
                  }),
      linter.violations.end());
  return linter.violations;
}

std::vector<Violation> lint_file(const std::string& path, const Options& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("wideleak-lint: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str(), options);
}

std::vector<Expectation> collect_expectations(const std::string& source) {
  const Scan scan = scan_source(source);
  std::vector<Expectation> out;
  for (const auto& [line, text] : scan.comments) {
    const std::size_t pos = text.find("expect:");
    if (pos == std::string::npos) continue;
    Expectation e;
    e.line = line;
    std::string rest = text.substr(pos + 7);
    std::string cur;
    for (char c : rest + ",") {
      if (std::isalnum(static_cast<unsigned char>(c))) {
        cur.push_back(c);
      } else if (!cur.empty()) {
        if (cur.rfind("WL", 0) == 0) out.push_back({e.line, {}}), out.back().rules.push_back(cur);
        cur.clear();
      }
    }
  }
  // Merge rules that share a line.
  std::map<int, std::vector<std::string>> merged;
  for (const Expectation& e : out) {
    for (const std::string& r : e.rules) merged[e.line].push_back(r);
  }
  std::vector<Expectation> result;
  for (auto& [line, rules] : merged) {
    std::sort(rules.begin(), rules.end());
    result.push_back({line, std::move(rules)});
  }
  return result;
}

}  // namespace wideleak::lint
