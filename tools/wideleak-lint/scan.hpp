// Internal shared layer: tokenizer, comment harvesting, suppression notes
// and token-stream helpers used by both the lexical rules (lint.cpp) and the
// symbol-index / dataflow passes (analysis.cpp). Not part of the public API.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace wideleak::lint::internal {

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

struct Scan {
  std::vector<Token> tokens;
  std::map<int, std::string> comments;  // line -> concatenated comment text
};

/// One pass over the raw source: emits code tokens and collects comment text
/// per line (comments are where suppressions and fixture expectations live).
/// String and character literal contents are dropped entirely.
Scan scan_source(const std::string& src);

/// Per-line suppression keys parsed from `// wl-lint: key[,key...]` comments.
/// Keys are matched as whole comma/space-separated tokens, so several rules
/// can share one comment and no key is a substring-match of another.
using NotesMap = std::map<int, std::set<std::string>>;
NotesMap parse_notes(const std::map<int, std::string>& comments);

/// Index of the `)` matching the `(` at `open` (or tokens.size() if
/// unmatched).
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open);

/// Index of the `}` matching the `{` at `open` (or tokens.size()).
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open);

/// Line on which the statement/declaration containing token `idx` begins:
/// the line of the first token after the previous `;`, `{` or `}`. This is
/// the anchor that lets a suppression comment sit above a multi-line
/// declaration and still cover a finding reported on its continuation lines.
int statement_anchor_line(const std::vector<Token>& toks, std::size_t idx);

/// True when the suppression key is present on `line`, the line above it,
/// the statement anchor line, or the line above the anchor.
bool suppressed_at(const NotesMap& notes, const std::string& key, int line, int anchor);

/// JSON string escaping (used by the JSON/SARIF emitters).
std::string json_escape(const std::string& s);

}  // namespace wideleak::lint::internal

namespace wideleak::lint {

struct Options;
struct SymbolIndex;
struct Violation;

/// Implemented in analysis.cpp: the WL007/WL008/WL009 passes, driven by
/// lint_source after the lexical rules run.
void run_dataflow_passes(const std::string& path, const internal::Scan& scan,
                         const internal::NotesMap& notes, const Options& options,
                         const SymbolIndex& index, std::vector<Violation>* violations);

}  // namespace wideleak::lint
