// wideleak-lint CLI.
//
//   wideleak-lint <paths...>                 lint files/dirs, exit 1 on findings
//   wideleak-lint --project <roots...>       project mode: build the cross-TU
//                                            symbol index over every root, scan
//                                            files in parallel, relax the rule
//                                            set for tests/ and bench/ (WL006
//                                            off), and gate against a baseline
//   wideleak-lint --self-test <fixtures>     validate the rule corpus: every
//                                            `// expect: WLxxx` marker must
//                                            fire with exactly those rules, no
//                                            unmarked line may fire, and all
//                                            nine rules must be exercised
//
// Options:
//   --format text|json|sarif    report format for --out (default text)
//   --out FILE                  write the report to FILE (text always goes to
//                               stderr as well, so CI logs stay readable)
//   --baseline FILE             grandfathered findings (path|rule|line lines);
//                               only NON-baselined findings fail the run
//   --write-baseline FILE       write the current findings as the new baseline
//                               and exit 0 (the paper-trail for ratcheting)
//   --relative-to DIR           strip DIR/ from reported paths (stable
//                               baselines and SARIF URIs regardless of where
//                               the tree is checked out)
//   --jobs N                    worker threads for project scanning
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace wideleak::lint;

namespace {

bool lintable(const fs::path& p) {
  static const std::set<std::string> kExts = {".hpp", ".cpp", ".h", ".cc", ".hh", ".cxx"};
  return kExts.count(p.extension().string()) > 0;
}

std::vector<std::string> gather(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p.generic_string());
    } else {
      std::cerr << "wideleak-lint: no such path: " << root << "\n";
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string relativize(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::string prefix = root;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  if (path.rfind(prefix, 0) == 0) return path.substr(prefix.size());
  return path;
}

struct Cli {
  bool self_test = false;
  bool project = false;
  std::string format = "text";
  std::string out_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string relative_to;
  std::size_t jobs = 0;  // 0 = hardware_concurrency
  std::vector<std::string> roots;
};

/// The tests/ and bench/ trees run a relaxed rule set: WL006 (by-value Bytes
/// parameters) polices the production data plane, not test scaffolding.
Options options_for(const std::string& path, bool project) {
  Options options;
  if (project &&
      (path.find("tests/") != std::string::npos || path.find("bench/") != std::string::npos)) {
    options.disabled_rules.insert("WL006");
  }
  return options;
}

/// Parallel scan: load every file, build the shared symbol index, then lint
/// all files on a worker pool. Results are merged in file order, so output is
/// deterministic regardless of scheduling.
std::vector<Violation> scan_tree(const std::vector<std::string>& files, const Cli& cli) {
  std::vector<SourceFile> sources(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    sources[i] = {files[i], read_file(files[i])};
  }
  const SymbolIndex index = build_symbol_index(sources);

  std::vector<std::vector<Violation>> per_file(files.size());
  std::size_t jobs = cli.jobs ? cli.jobs : std::thread::hardware_concurrency();
  jobs = std::max<std::size_t>(1, std::min(jobs, files.size()));

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= sources.size()) return;
      Options options = options_for(sources[i].path, cli.project);
      options.index = &index;
      per_file[i] = lint_source(sources[i].path, sources[i].content, options);
    }
  };
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  std::vector<Violation> all;
  for (std::vector<Violation>& vs : per_file) {
    for (Violation& v : vs) {
      v.file = relativize(v.file, cli.relative_to);
      all.push_back(std::move(v));
    }
  }
  return all;
}

int run_lint(const std::vector<std::string>& files, const Cli& cli) {
  const std::vector<Violation> all = scan_tree(files, cli);

  if (!cli.write_baseline_path.empty()) {
    std::ofstream out(cli.write_baseline_path);
    out << render_baseline(all);
    std::cout << "wideleak-lint: wrote baseline with " << all.size() << " entr"
              << (all.size() == 1 ? "y" : "ies") << " to " << cli.write_baseline_path
              << "\n";
    return 0;
  }

  std::vector<Violation> fresh = all;
  std::size_t baselined = 0;
  if (!cli.baseline_path.empty()) {
    const Baseline baseline = load_baseline(cli.baseline_path);
    std::vector<std::string> stale;
    fresh = filter_baseline(all, baseline, &stale);
    baselined = all.size() - fresh.size();
    for (const std::string& entry : stale) {
      std::cerr << "wideleak-lint: stale baseline entry (nothing fires here any more): "
                << entry << "\n";
    }
  }

  // The chosen format goes to --out (or stdout); findings always go to
  // stderr as text so CI logs and terminals stay readable.
  std::cerr << render_text(fresh);
  if (!cli.out_path.empty() || cli.format != "text") {
    // Reports carry ALL findings (baselined included) — the artifact
    // documents the tree; the exit code gates the fresh ones.
    const std::string report = cli.format == "sarif"  ? render_sarif(all)
                               : cli.format == "json" ? render_json(all)
                                                      : render_text(all);
    if (!cli.out_path.empty()) {
      std::ofstream out(cli.out_path);
      out << report;
    } else {
      std::cout << report;
    }
  }

  if (!fresh.empty()) {
    std::cerr << "wideleak-lint: " << fresh.size() << " new violation(s) in "
              << files.size() << " file(s)";
    if (baselined > 0) std::cerr << " (+" << baselined << " baselined)";
    std::cerr << "\n";
    return 1;
  }
  std::cout << "wideleak-lint: clean (" << files.size() << " files";
  if (baselined > 0) std::cout << ", " << baselined << " baselined finding(s)";
  std::cout << ")\n";
  return 0;
}

int run_self_test(const std::vector<std::string>& files) {
  Options options;
  options.assume_scoped = true;  // fixtures stand in for the path-scoped dirs

  std::size_t failures = 0;
  std::set<std::string> rules_seen;
  for (const std::string& file : files) {
    const std::string source = read_file(file);
    // line -> sorted rule list, from the linter and from the markers.
    std::map<int, std::vector<std::string>> got;
    for (const Violation& v : lint_source(file, source, options)) {
      got[v.line].push_back(v.rule);
    }
    for (auto& [line, rules] : got) {
      std::sort(rules.begin(), rules.end());
      rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
    }
    std::map<int, std::vector<std::string>> want;
    for (const Expectation& e : collect_expectations(source)) {
      want[e.line] = e.rules;
      for (const std::string& r : e.rules) rules_seen.insert(r);
    }

    for (const auto& [line, rules] : want) {
      auto it = got.find(line);
      if (it == got.end() || it->second != rules) {
        std::cerr << "self-test FAIL " << file << ":" << line << ": expected ";
        for (const std::string& r : rules) std::cerr << r << " ";
        std::cerr << "but linter reported ";
        if (it == got.end()) {
          std::cerr << "nothing";
        } else {
          for (const std::string& r : it->second) std::cerr << r << " ";
        }
        std::cerr << "\n";
        ++failures;
      }
    }
    for (const auto& [line, rules] : got) {
      if (!want.count(line)) {
        std::cerr << "self-test FAIL " << file << ":" << line << ": unexpected ";
        for (const std::string& r : rules) std::cerr << r << " ";
        std::cerr << "(no `// expect:` marker)\n";
        ++failures;
      }
    }
  }

  for (const std::string& rule : all_rules()) {
    if (!rules_seen.count(rule)) {
      std::cerr << "self-test FAIL: fixture corpus never exercises " << rule << "\n";
      ++failures;
    }
  }

  if (failures > 0) {
    std::cerr << "wideleak-lint self-test: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "wideleak-lint self-test: all expectations matched (" << files.size()
            << " fixtures)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  auto need_value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << "wideleak-lint: " << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      cli.self_test = true;
    } else if (arg == "--project") {
      cli.project = true;
    } else if (arg == "--format") {
      cli.format = need_value(i, "--format");
      if (cli.format != "text" && cli.format != "json" && cli.format != "sarif") {
        std::cerr << "wideleak-lint: unknown format '" << cli.format << "'\n";
        return 2;
      }
    } else if (arg == "--out") {
      cli.out_path = need_value(i, "--out");
    } else if (arg == "--baseline") {
      cli.baseline_path = need_value(i, "--baseline");
    } else if (arg == "--write-baseline") {
      cli.write_baseline_path = need_value(i, "--write-baseline");
    } else if (arg == "--relative-to") {
      cli.relative_to = need_value(i, "--relative-to");
    } else if (arg == "--jobs") {
      cli.jobs = static_cast<std::size_t>(std::atol(need_value(i, "--jobs").c_str()));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: wideleak-lint [--project] [--self-test] [--format text|json|sarif]\n"
                << "                     [--out FILE] [--baseline FILE] [--write-baseline FILE]\n"
                << "                     [--relative-to DIR] [--jobs N] <files-or-dirs...>\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "wideleak-lint: unknown option " << arg << " (try --help)\n";
      return 2;
    } else {
      cli.roots.push_back(arg);
    }
  }
  if (cli.roots.empty()) {
    std::cerr << "wideleak-lint: no input paths (try --help)\n";
    return 2;
  }
  const std::vector<std::string> files = gather(cli.roots);
  if (files.empty()) {
    std::cerr << "wideleak-lint: no lintable files under the given paths\n";
    return 2;
  }
  return cli.self_test ? run_self_test(files) : run_lint(files, cli);
}
