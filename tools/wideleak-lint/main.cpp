// wideleak-lint CLI.
//
//   wideleak-lint <paths...>              lint files/dirs, exit 1 on findings
//   wideleak-lint --self-test <fixtures>  validate the rule corpus: every
//                                         `// expect: WLxxx` marker must fire
//                                         with exactly those rules, no
//                                         unmarked line may fire, and all
//                                         six rules must be exercised.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using namespace wideleak::lint;

namespace {

bool lintable(const fs::path& p) {
  static const std::set<std::string> kExts = {".hpp", ".cpp", ".h", ".cc", ".hh", ".cxx"};
  return kExts.count(p.extension().string()) > 0;
}

std::vector<std::string> gather(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p.generic_string());
    } else {
      std::cerr << "wideleak-lint: no such path: " << root << "\n";
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int run_lint(const std::vector<std::string>& files) {
  std::size_t findings = 0;
  for (const std::string& file : files) {
    for (const Violation& v : lint_file(file)) {
      std::cerr << v.file << ":" << v.line << ": " << v.rule << ": " << v.message << "\n";
      ++findings;
    }
  }
  if (findings > 0) {
    std::cerr << "wideleak-lint: " << findings << " violation(s) in " << files.size()
              << " file(s)\n";
    return 1;
  }
  std::cout << "wideleak-lint: clean (" << files.size() << " files)\n";
  return 0;
}

int run_self_test(const std::vector<std::string>& files) {
  Options options;
  options.assume_scoped = true;  // fixtures stand in for WL003-scoped dirs

  std::size_t failures = 0;
  std::set<std::string> rules_seen;
  for (const std::string& file : files) {
    const std::string source = read_file(file);
    // line -> sorted rule list, from the linter and from the markers.
    std::map<int, std::vector<std::string>> got;
    for (const Violation& v : lint_source(file, source, options)) {
      got[v.line].push_back(v.rule);
    }
    for (auto& [line, rules] : got) {
      std::sort(rules.begin(), rules.end());
      rules.erase(std::unique(rules.begin(), rules.end()), rules.end());
    }
    std::map<int, std::vector<std::string>> want;
    for (const Expectation& e : collect_expectations(source)) {
      want[e.line] = e.rules;
      for (const std::string& r : e.rules) rules_seen.insert(r);
    }

    for (const auto& [line, rules] : want) {
      auto it = got.find(line);
      if (it == got.end() || it->second != rules) {
        std::cerr << "self-test FAIL " << file << ":" << line << ": expected ";
        for (const std::string& r : rules) std::cerr << r << " ";
        std::cerr << "but linter reported ";
        if (it == got.end()) {
          std::cerr << "nothing";
        } else {
          for (const std::string& r : it->second) std::cerr << r << " ";
        }
        std::cerr << "\n";
        ++failures;
      }
    }
    for (const auto& [line, rules] : got) {
      if (!want.count(line)) {
        std::cerr << "self-test FAIL " << file << ":" << line << ": unexpected ";
        for (const std::string& r : rules) std::cerr << r << " ";
        std::cerr << "(no `// expect:` marker)\n";
        ++failures;
      }
    }
  }

  for (const char* rule : {"WL001", "WL002", "WL003", "WL004", "WL005", "WL006"}) {
    if (!rules_seen.count(rule)) {
      std::cerr << "self-test FAIL: fixture corpus never exercises " << rule << "\n";
      ++failures;
    }
  }

  if (failures > 0) {
    std::cerr << "wideleak-lint self-test: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "wideleak-lint self-test: all expectations matched (" << files.size()
            << " fixtures)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: wideleak-lint [--self-test] <files-or-dirs...>\n";
      return 0;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "wideleak-lint: no input paths (try --help)\n";
    return 2;
  }
  const std::vector<std::string> files = gather(roots);
  if (files.empty()) {
    std::cerr << "wideleak-lint: no lintable files under the given paths\n";
    return 2;
  }
  return self_test ? run_self_test(files) : run_lint(files);
}
