#include "scan.hpp"

#include <cctype>
#include <cstdio>

namespace wideleak::lint::internal {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character punctuators we must not split (the rules key on `==`,
// `!=`, `::`, `->`, `<<`); longest match first.
const char* kPuncts[] = {"<<=", ">>=", "<=>", "->*", "...", "==", "!=", "<=", ">=",
                         "&&",  "||",  "::",  "->",  "<<",  ">>", "+=", "-=", "*=",
                         "/=",  "%=",  "&=",  "|=",  "^=",  "++", "--"};

}  // namespace

Scan scan_source(const std::string& src) {
  Scan out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto append_comment = [&](int at_line, char c) { out.comments[at_line].push_back(c); };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      i += 2;
      while (i < n && src[i] != '\n') append_comment(line, src[i++]);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          ++line;
        } else {
          append_comment(line, src[i]);
        }
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // String / char literals (handles escapes; raw strings handled crudely by
    // the escape-free scan below — the codebase does not use raw strings).
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      Token t;
      t.text = (quote == '"') ? "\"\"" : "''";
      t.line = line;
      out.tokens.push_back(std::move(t));
      continue;
    }
    // Identifiers / keywords.
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      Token t;
      t.text = src.substr(i, j - i);
      t.line = line;
      t.is_ident = true;
      out.tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Numbers (including hex; we only need them to not merge with idents).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '.' || src[j] == '\'')) ++j;
      Token t;
      t.text = src.substr(i, j - i);
      t.line = line;
      out.tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    std::size_t len = 1;
    for (const char* p : kPuncts) {
      const std::size_t pl = std::char_traits<char>::length(p);
      if (src.compare(i, pl, p) == 0) {
        len = pl;
        break;
      }
    }
    Token t;
    t.text = src.substr(i, len);
    t.line = line;
    out.tokens.push_back(std::move(t));
    i += len;
  }
  return out;
}

NotesMap parse_notes(const std::map<int, std::string>& comments) {
  NotesMap notes;
  for (const auto& [line, text] : comments) {
    const std::size_t at = text.find("wl-lint:");
    if (at == std::string::npos) continue;
    // Whole-token parse of the key list: keys are [a-z-]+ words separated by
    // commas and/or spaces, terminated by anything else. This makes
    // `// wl-lint: log-ok,ct-ok` set both keys and keeps one key from ever
    // matching inside another.
    std::string cur;
    for (std::size_t i = at + 8; i <= text.size(); ++i) {
      const char c = i < text.size() ? text[i] : '\0';
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-') {
        cur.push_back(c);
      } else {
        if (!cur.empty()) notes[line].insert(cur);
        cur.clear();
        if (c != ',' && c != ' ' && c != '\t' && c != '\0') break;
      }
    }
  }
  return notes;
}

std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

int statement_anchor_line(const std::vector<Token>& toks, std::size_t idx) {
  if (idx >= toks.size()) return 0;
  std::size_t i = idx;
  while (i > 0) {
    const std::string& t = toks[i - 1].text;
    if (t == ";" || t == "{" || t == "}") break;
    --i;
  }
  return toks[i].line;
}

bool suppressed_at(const NotesMap& notes, const std::string& key, int line, int anchor) {
  for (int l : {line, line - 1, anchor, anchor - 1}) {
    if (l <= 0) continue;
    auto it = notes.find(l);
    if (it != notes.end() && it->second.count(key)) return true;
  }
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace wideleak::lint::internal
