// Pass 2 and 3 of the analyzer: the declaration/symbol index built across
// all translation units of one invocation, and the intra-procedural passes
// that consume it —
//
//   WL007  secret-taint tracking through chains of local assignments,
//   WL008  WL_GUARDED_BY / WL_REQUIRES lock-discipline checking,
//   WL009  determinism hygiene (banned time/randomness sources).
//
// The machinery shared by all three is the StructureWalker: a single forward
// scan over the token stream that maintains a scope stack (namespace /
// class / function / block), the set of mutexes held in each scope
// (lock_guard / unique_lock / scoped_lock declarations), and statement
// boundaries. It is deliberately heuristic — no template instantiation, no
// overload resolution — but precise enough for this codebase's idioms, and
// tuned so the shipped baseline stays empty.
#include <algorithm>
#include <cctype>
#include <iterator>

#include "lint.hpp"
#include "scan.hpp"

namespace wideleak::lint {

using internal::match_paren;
using internal::NotesMap;
using internal::parse_notes;
using internal::Scan;
using internal::scan_source;
using internal::statement_anchor_line;
using internal::suppressed_at;
using internal::Token;

const GuardedField* SymbolIndex::find_field(const std::string& cls,
                                            const std::string& field) const {
  for (const GuardedField& f : guarded_fields) {
    if (f.cls == cls && f.field == field) return &f;
  }
  return nullptr;
}

const RequiredMethod* SymbolIndex::find_method(const std::string& cls,
                                               const std::string& method) const {
  for (const RequiredMethod& m : required_methods) {
    if (m.cls == cls && m.method == method) return &m;
  }
  return nullptr;
}

namespace {

// Keywords that look like `ident (` but never name a function being defined.
const std::set<std::string> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "throw",
    "new", "delete", "do", "else", "try", "case", "default", "static_assert",
    "alignof", "decltype", "co_return", "co_await", "co_yield"};

bool is_lock_decl(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock";
}

// Members whose result carries no secret content even when called on a
// tainted buffer (sizes, emptiness); everything else propagates taint.
const std::set<std::string> kBenignMembers = {"size", "empty", "length", "count",
                                              "capacity"};

// WL007 taint sources: the functions whose return value IS key material.
bool is_taint_source(const std::vector<Token>& toks, std::size_t i) {
  if (!toks[i].is_ident) return false;
  const std::string& t = toks[i].text;
  const bool member = i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
  if (member && (t == "reveal" || t == "reveal_copy")) return true;
  if (t == "derive_session_keys" || t == "derive_wiseplay_keys" || t == "derive_triple") {
    return true;
  }
  // Keybox::parse — keybox parsing yields device-key material.
  if (t == "parse" && i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "Keybox") {
    return true;
  }
  return false;
}

struct Scope {
  enum Kind { File, Namespace, Class, Function, Block };
  Kind kind = Block;
  std::string name;                // class or function name
  std::string cls;                 // Function: enclosing class ("" = free)
  bool ctor_dtor = false;          // Function: constructor/destructor body
  std::set<std::string> held;      // mutex names held in this scope
  std::map<std::string, int> taint;  // Function: tainted local -> source line
};

/// The shared forward scan. Runs in one of two modes: index building
/// (harvest WL_GUARDED_BY / WL_REQUIRES into `out_index`) or checking
/// (WL007/WL008 against a finished index; WL009 is path-scoped and runs in
/// the same sweep).
struct StructureWalker {
  StructureWalker(const std::string& path_in, const std::vector<Token>& toks_in,
                  const NotesMap& notes_in, const Options& options_in)
      : path(path_in), toks(toks_in), notes(notes_in), options(options_in) {}

  const std::string& path;
  const std::vector<Token>& toks;
  const NotesMap& notes;
  const Options& options;
  SymbolIndex* out_index = nullptr;         // index-build mode
  const SymbolIndex* index = nullptr;       // check mode
  std::vector<Violation>* violations = nullptr;
  bool wl009_scoped = false;

  std::vector<Scope> scopes;

  // Pending construct recognition between statement boundaries.
  bool class_pending = false;
  std::string class_pending_name;
  bool namespace_pending = false;
  bool sig_pending = false;            // first `ident (` candidate this statement
  std::string sig_name, sig_cls;
  std::size_t sig_close = 0;           // index of the candidate's `)`

  void reset_pending() {
    class_pending = false;
    namespace_pending = false;
    sig_pending = false;
    sig_name.clear();
    sig_cls.clear();
  }

  Scope* innermost(Scope::Kind kind) {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == kind) return &*it;
    }
    return nullptr;
  }

  /// The class whose members an unqualified name in the current position
  /// refers to: the enclosing Function's class if any, else the innermost
  /// Class scope (for code textually inside a class body).
  std::string current_class() {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::Function) return it->cls;
      if (it->kind == Scope::Class) return it->name;
    }
    return "";
  }

  bool in_function() { return innermost(Scope::Function) != nullptr; }

  bool in_ctor_dtor() {
    Scope* fn = innermost(Scope::Function);
    return fn != nullptr && fn->ctor_dtor;
  }

  bool holds(const std::string& mutex) {
    return !scopes.empty() && scopes.back().held.count(mutex) > 0;
  }

  std::map<std::string, int>* taint_map() {
    Scope* fn = innermost(Scope::Function);
    return fn ? &fn->taint : nullptr;
  }

  void flag(int line, int anchor, const char* rule, const char* key, std::string message) {
    if (!violations) return;
    if (suppressed_at(notes, key, line, anchor)) return;
    violations->push_back({path, line, rule, std::move(message)});
  }

  // --- declaration harvesting (index-build mode) ---------------------------

  /// `Type field WL_GUARDED_BY(mutex) [= init];` — the annotated member is
  /// the identifier immediately before the macro.
  void harvest_guarded_field(std::size_t i) {
    if (i == 0 || !toks[i - 1].is_ident) return;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") return;
    Scope* cls = innermost(Scope::Class);
    if (!cls) return;
    GuardedField f;
    f.cls = cls->name;
    f.field = toks[i - 1].text;
    f.mutex = paren_arg_name(i + 1);
    f.file = path;
    f.line = toks[i - 1].line;
    if (!f.mutex.empty()) out_index->guarded_fields.push_back(std::move(f));
  }

  /// `Ret method(args) [const] WL_REQUIRES(mutex);` — walk back over the
  /// parameter list to the method name. Works for in-class declarations and
  /// out-of-line `Ret Class::method(...) WL_REQUIRES(m) { ... }` definitions.
  void harvest_required_method(std::size_t i) {
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") return;
    // Find the `)` closing the parameter list: the nearest `)` before the
    // macro (skipping cv-qualifiers between them).
    std::size_t j = i;
    while (j > 0 && toks[j - 1].is_ident &&
           (toks[j - 1].text == "const" || toks[j - 1].text == "noexcept" ||
            toks[j - 1].text == "override" || toks[j - 1].text == "final")) {
      --j;
    }
    if (j == 0 || toks[j - 1].text != ")") return;
    // Back over the balanced parameter list to its `(`.
    int depth = 0;
    std::size_t open = j - 1;
    while (true) {
      if (toks[open].text == ")") ++depth;
      if (toks[open].text == "(") {
        --depth;
        if (depth == 0) break;
      }
      if (open == 0) return;
      --open;
    }
    if (open == 0 || !toks[open - 1].is_ident) return;
    RequiredMethod m;
    m.method = toks[open - 1].text;
    m.mutex = paren_arg_name(i + 1);
    m.file = path;
    m.line = toks[open - 1].line;
    // Explicit `Class ::` qualifier wins; otherwise the innermost class body.
    if (open >= 3 && toks[open - 2].text == "::" && toks[open - 3].is_ident) {
      m.cls = toks[open - 3].text;
    } else if (Scope* cls = innermost(Scope::Class)) {
      m.cls = cls->name;
    }
    if (!m.cls.empty() && !m.mutex.empty()) {
      out_index->required_methods.push_back(std::move(m));
    }
  }

  /// The (last) identifier inside a macro/lock argument list: for
  /// `WL_GUARDED_BY(mutex_)` or `lock(server.stats_mutex_)` the guarding
  /// mutex is named by the final path component.
  std::string paren_arg_name(std::size_t open) {
    const std::size_t close = match_paren(toks, open);
    std::string name;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (toks[k].is_ident) name = toks[k].text;
    }
    return name;
  }

  // --- lock tracking (check mode) ------------------------------------------

  /// `std::lock_guard<std::mutex> lk(m1);` / `std::scoped_lock lk(m1, m2);`
  /// add their mutexes to the current scope's held set. Returns the index to
  /// resume scanning from.
  std::size_t track_lock_decl(std::size_t i) {
    std::size_t j = i + 1;
    // Skip template arguments (tokenizer may emit `>>` for nested closes).
    if (j < toks.size() && toks[j].text == "<") {
      int angle = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "<") ++angle;
        if (toks[j].text == ">") --angle;
        if (toks[j].text == ">>") angle -= 2;
        if (angle <= 0) {
          ++j;
          break;
        }
      }
    }
    if (j >= toks.size() || !toks[j].is_ident) return i;  // e.g. a bare mention
    ++j;                                                  // past the variable name
    if (j >= toks.size() || toks[j].text != "(") return i;
    const std::size_t close = match_paren(toks, j);
    // Each top-level comma-separated argument names one locked mutex.
    std::string last_ident;
    int depth = 0;
    for (std::size_t k = j; k <= close && k < toks.size(); ++k) {
      if (toks[k].text == "(") ++depth;
      if (toks[k].text == ")") --depth;
      if ((toks[k].text == "," && depth == 1) || (toks[k].text == ")" && depth == 0)) {
        if (!last_ident.empty() && !scopes.empty()) scopes.back().held.insert(last_ident);
        last_ident.clear();
        continue;
      }
      if (toks[k].is_ident) last_ident = toks[k].text;
    }
    return close;
  }

  // --- WL008 access checks (check mode) ------------------------------------

  void check_member_access(std::size_t i) {
    if (!index || !in_function() || in_ctor_dtor()) return;
    const std::string cls = current_class();
    if (cls.empty()) return;
    // Accesses through another object (`other.field`) can't be resolved to a
    // lock instance intra-procedurally; only implicit-this and `this->`
    // accesses are checked.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      if (!(i >= 2 && toks[i - 2].text == "this")) return;
    }
    if (i > 0 && toks[i - 1].text == "::") return;  // qualified name

    const int line = toks[i].line;
    const int anchor = statement_anchor_line(toks, i);

    if (const GuardedField* f = index->find_field(cls, toks[i].text)) {
      if (!holds(f->mutex)) {
        flag(line, anchor, "WL008", "lock-ok",
             "'" + f->field + "' is WL_GUARDED_BY(" + f->mutex + ") but accessed without " +
                 "holding it (CWE-667); take a lock_guard or annotate the method " +
                 "WL_REQUIRES(" + f->mutex + ")");
      }
      return;
    }
    // Call to a WL_REQUIRES method of the same class without the lock held.
    if (i + 1 < toks.size() && toks[i + 1].text == "(") {
      Scope* fn = innermost(Scope::Function);
      if (fn && fn->name == toks[i].text) return;  // its own definition/recursion
      if (const RequiredMethod* m = index->find_method(cls, toks[i].text)) {
        if (!holds(m->mutex)) {
          flag(line, anchor, "WL008", "lock-ok",
               "call to '" + m->method + "' which WL_REQUIRES(" + m->mutex +
                   ") without holding it (CWE-667)");
        }
      }
    }
  }

  // --- WL007 taint dataflow (check mode) -----------------------------------

  bool expr_has_source(std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      if (is_taint_source(toks, k)) return true;
    }
    return false;
  }

  /// A tainted local appearing as a value in [begin, end). Member accesses of
  /// benign members (`leaked.size()`) do not count.
  std::size_t find_tainted_use(std::size_t begin, std::size_t end) {
    std::map<std::string, int>* taint = taint_map();
    if (!taint) return toks.size();
    for (std::size_t k = begin; k < end; ++k) {
      if (!toks[k].is_ident || !taint->count(toks[k].text)) continue;
      if (k > begin && (toks[k - 1].text == "." || toks[k - 1].text == "->")) continue;
      if (k + 1 < end && (toks[k + 1].text == "." || toks[k + 1].text == "->")) {
        if (k + 2 < end && kBenignMembers.count(toks[k + 2].text)) continue;
      }
      return k;
    }
    return toks.size();
  }

  void taint_sink(std::size_t at, std::size_t begin, std::size_t end,
                  const std::string& sink) {
    const std::size_t use = find_tainted_use(begin, end);
    if (use >= toks.size()) return;  // direct source uses are WL001's beat
    std::map<std::string, int>* taint = taint_map();
    const int source_line = (*taint)[toks[use].text];
    flag(toks[use].line, statement_anchor_line(toks, at), "WL007", "taint-ok",
         "'" + toks[use].text + "' carries secret bytes (tainted at line " +
             std::to_string(source_line) + ") into " + sink +
             " (CWE-532: laundered key material reaches an output channel)");
  }

  /// Process one statement span [begin, end) for taint propagation and sinks.
  void analyze_statement(std::size_t begin, std::size_t end) {
    std::map<std::string, int>* taint = taint_map();
    if (!taint) return;

    // -- sinks ---------------------------------------------------------------
    for (std::size_t k = begin; k < end; ++k) {
      if (!toks[k].is_ident) continue;
      const std::string& t = toks[k].text;
      const bool member = k > 0 && (toks[k - 1].text == "." || toks[k - 1].text == "->");
      if ((t == "hex_encode" || t == "base64_encode" || t == "to_string") && !member &&
          k + 1 < end && toks[k + 1].text == "(") {
        taint_sink(k, k + 2, std::min(match_paren(toks, k + 1), end), t);
      }
      if (t == "WL_LOG" || (t == "log_line" && !member)) {
        taint_sink(k, k + 1, end, t == "WL_LOG" ? "WL_LOG" : "log_line");
      }
      // A network send: any call qualified `net::` plus the send-shaped
      // endpoint methods. Wrapped/encrypted payloads travel as untainted
      // values; only raw revealed bytes reach here tainted.
      const bool net_qualified =
          k >= 2 && toks[k - 1].text == "::" && toks[k - 2].text == "net";
      const bool send_method = member && (t == "request" || t == "send" || t == "post");
      if ((net_qualified || send_method) && k + 1 < end && toks[k + 1].text == "(") {
        taint_sink(k, k + 2, std::min(match_paren(toks, k + 1), end),
                   "net:: send '" + t + "'");
      }
    }

    // -- propagation ---------------------------------------------------------
    // Assignment: `lhs = expr` (first top-level `=`).
    int depth = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (toks[k].text == "(") ++depth;
      if (toks[k].text == ")") --depth;
      if (toks[k].text != "=" || depth != 0) continue;
      // Root of the lhs access chain: `req.body = x` taints `req`, and
      // `Bytes leaked = x` taints `leaked` (not the type). Start at the
      // ident just before `=` (skipping a trailing `[idx]` subscript) and
      // walk back only over `ident.` / `ident->` pairs.
      std::size_t root = k;
      if (root > begin && toks[root - 1].text == "]") {
        while (root > begin && toks[root - 1].text != "[") --root;
        if (root > begin) --root;  // onto the `[`
      }
      if (root == begin || !toks[root - 1].is_ident) break;
      --root;  // the ident directly left of `=` / `[`
      while (root >= begin + 2 &&
             (toks[root - 1].text == "." || toks[root - 1].text == "->") &&
             toks[root - 2].is_ident) {
        root -= 2;
      }
      if (!toks[root].is_ident) break;
      const std::string& name = toks[root].text;
      const bool tainted = expr_has_source(k + 1, end) ||
                           find_tainted_use(k + 1, end) < toks.size();
      if (tainted) {
        (*taint)[name] = toks[root].line;
      } else {
        taint->erase(name);  // overwritten with clean data
      }
      return;
    }
    // Constructor-style declaration: `Type name(expr)` / `Type name{expr}`.
    for (std::size_t k = begin + 1; k < end; ++k) {
      if (!toks[k].is_ident || k + 1 >= end) continue;
      if (toks[k + 1].text != "(" && toks[k + 1].text != "{") continue;
      const Token& prev = toks[k - 1];
      const bool after_type =
          (prev.is_ident && !kControlKeywords.count(prev.text)) || prev.text == ">" ||
          prev.text == "&" || prev.text == "*";
      if (!after_type) continue;
      const std::size_t close = k + 1 < end && toks[k + 1].text == "("
                                    ? match_paren(toks, k + 1)
                                    : internal::match_brace(toks, k + 1);
      const std::size_t stop = std::min(close, end);
      if (expr_has_source(k + 2, stop) || find_tainted_use(k + 2, stop) < toks.size()) {
        (*taint)[toks[k].text] = toks[k].line;
      }
      return;
    }
  }

  // --- the walk ------------------------------------------------------------

  void run() {
    scopes.push_back({Scope::File, "", "", false, {}, {}});
    std::size_t stmt_begin = 0;
    int paren_depth = 0;

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      const std::string& t = tok.text;

      if (t == "(") ++paren_depth;
      if (t == ")") --paren_depth;

      if (t == ";" && paren_depth <= 0) {
        if (index && in_function()) analyze_statement(stmt_begin, i);
        reset_pending();
        stmt_begin = i + 1;
        continue;
      }

      if (t == "{") {
        if (index && in_function()) analyze_statement(stmt_begin, i);
        Scope next;
        next.held = scopes.back().held;  // lexical scopes inherit held locks
        if (class_pending) {
          next.kind = Scope::Class;
          next.name = class_pending_name;
        } else if (sig_pending && sig_close < i) {
          next.kind = Scope::Function;
          next.name = sig_name;
          next.cls = !sig_cls.empty() ? sig_cls : current_class();
          next.ctor_dtor = !next.cls.empty() &&
                           (sig_name == next.cls || sig_name == "~" + next.cls);
          // WL_REQUIRES on the definition: the named mutex is held throughout.
          for (std::size_t k = sig_close; k < i; ++k) {
            if (toks[k].is_ident && toks[k].text == "WL_REQUIRES" && k + 1 < i &&
                toks[k + 1].text == "(") {
              const std::string m = paren_arg_name(k + 1);
              if (!m.empty()) next.held.insert(m);
            }
          }
        } else if (namespace_pending) {
          next.kind = Scope::Namespace;
        } else {
          next.kind = Scope::Block;
        }
        scopes.push_back(std::move(next));
        reset_pending();
        stmt_begin = i + 1;
        paren_depth = 0;
        continue;
      }

      if (t == "}") {
        if (index && in_function()) analyze_statement(stmt_begin, i);
        if (scopes.size() > 1) scopes.pop_back();
        reset_pending();
        stmt_begin = i + 1;
        paren_depth = 0;
        continue;
      }

      if (!tok.is_ident) continue;

      // Construct recognition.
      if (t == "class" || t == "struct") {
        if (i + 1 < toks.size() && toks[i + 1].is_ident) {
          class_pending = true;
          class_pending_name = toks[i + 1].text;
        }
        continue;
      }
      if (t == "enum") {
        class_pending = false;  // `enum class X {` opens a plain block
        continue;
      }
      if (t == "namespace") {
        namespace_pending = true;
        continue;
      }
      if (!sig_pending && !kControlKeywords.count(t) && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        sig_pending = true;
        sig_name = t;
        sig_close = match_paren(toks, i + 1);
        if (i >= 2 && toks[i - 1].text == "::" && toks[i - 2].is_ident) {
          sig_cls = toks[i - 2].text;
        }
        // A destructor definition: `~` directly before the name.
        if (i >= 1 && toks[i - 1].text == "~") sig_name = "~" + sig_name;
        if (i >= 3 && toks[i - 1].text == "~" && toks[i - 2].text == "::" &&
            toks[i - 3].is_ident) {
          sig_cls = toks[i - 3].text;
          sig_name = "~" + sig_cls;
        }
      }

      // Index harvesting.
      if (out_index) {
        if (t == "WL_GUARDED_BY") harvest_guarded_field(i);
        if (t == "WL_REQUIRES") harvest_required_method(i);
      }

      // Checking.
      if (index) {
        if (is_lock_decl(t)) {
          i = track_lock_decl(i);
          continue;
        }
        check_member_access(i);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// WL009: determinism hygiene (plain token scan; path-scoped)
// ---------------------------------------------------------------------------

bool scoped_for_wl009(const std::string& path) {
  return path.find("src/core") != std::string::npos ||
         path.find("src/net") != std::string::npos ||
         path.find("src/ott") != std::string::npos;
}

void check_wl009(const std::string& path, const std::vector<Token>& toks,
                 const NotesMap& notes, std::vector<Violation>* violations) {
  auto flag = [&](std::size_t i, const std::string& what) {
    const int line = toks[i].line;
    const int anchor = statement_anchor_line(toks, i);
    if (suppressed_at(notes, "det-ok", line, anchor)) return;
    violations->push_back(
        {path, line, "WL009",
         what + " breaks bit-identical replay inside the deterministic subtrees; "
                "use support::SimClock for time and derive_stream_seed(...) for "
                "randomness (docs/LINTING.md)"});
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident) continue;
    const std::string& t = toks[i].text;
    if (t == "random_device") {
      flag(i, "std::random_device is nondeterministic and");
      continue;
    }
    if (t == "system_clock" || t == "steady_clock" || t == "high_resolution_clock") {
      flag(i, "std::chrono::" + t + " reads wall/host time, which");
      continue;
    }
    if ((t == "rand" || t == "srand") && i + 1 < toks.size() && toks[i + 1].text == "(" &&
        (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->"))) {
      flag(i, t + "() uses hidden global PRNG state, which");
      continue;
    }
    if (t == "mt19937" || t == "mt19937_64") {
      // Only *unseeded* declarations are flagged: `std::mt19937 g;` or
      // `std::mt19937 g{};` seeds from a default constant the reader cannot
      // tie to the campaign seed tree. `mt19937 g(seed)` names its seed.
      std::size_t j = i + 1;
      if (j < toks.size() && !toks[j].is_ident) continue;  // a type mention only
      if (j < toks.size() && toks[j].is_ident) ++j;        // variable name
      const bool unseeded =
          j >= toks.size() || toks[j].text == ";" ||
          (toks[j].text == "(" && match_paren(toks, j) == j + 1) ||
          (toks[j].text == "{" && j + 1 < toks.size() && toks[j + 1].text == "}");
      if (unseeded) flag(i, "unseeded std::" + t + " hides its seed, which");
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// WL010: scheduler hygiene (plain token scan; same path scope as WL009)
// ---------------------------------------------------------------------------

void check_wl010(const std::string& path, const std::vector<Token>& toks,
                 const NotesMap& notes, std::vector<Violation>* violations) {
  auto flag = [&](std::size_t i, const std::string& what) {
    const int line = toks[i].line;
    const int anchor = statement_anchor_line(toks, i);
    if (suppressed_at(notes, "wait-ok", line, anchor)) return;
    violations->push_back(
        {path, line, "WL010",
         what + " stalls a campaign worker outside the scheduler; route waits "
                "through SimClock::sleep so the task queue can park them on the "
                "timer wheel and run other cells meanwhile (docs/LINTING.md)"});
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident) continue;
    const std::string& t = toks[i].text;
    // Thread-blocking sleeps. SimClock::sleep (`clock.sleep(...)`) is the
    // approved wait and spells none of these; cv wait_until is scheduler
    // machinery, not a sleep, and is likewise not matched.
    if (t == "sleep_for" || t == "sleep_until") {
      flag(i, "std::this_thread::" + t + "()");
      continue;
    }
    if ((t == "usleep" || t == "nanosleep" || t == "sleep") && i + 1 < toks.size() &&
        toks[i + 1].text == "(" &&
        (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->" &&
                    toks[i - 1].text != "::"))) {
      // Free-function POSIX sleeps only: `clock.sleep(...)`/`clock->sleep(...)`
      // is SimClock, and any `ns::sleep(...)` names a wrapper, not libc.
      flag(i, t + "()");
      continue;
    }
    // Busy-wait: a `while (...)` whose body is empty (`;` or `{}`) burns the
    // worker polling. A do-while tail (`} while (...);`) is not one: its `;`
    // closes the statement, not an empty body — match the preceding `}` back
    // to its `{` and look for the `do`.
    if (t == "while" && i + 1 < toks.size() && toks[i + 1].text == "(") {
      if (i > 0 && toks[i - 1].text == "}") {
        int depth = 0;
        std::size_t open = i - 1;
        for (std::size_t j = i; j-- > 0;) {
          if (toks[j].text == "}") ++depth;
          if (toks[j].text == "{" && --depth == 0) {
            open = j;
            break;
          }
        }
        if (open > 0 && toks[open - 1].text == "do") continue;
      }
      const std::size_t close = match_paren(toks, i + 1);
      if (close + 1 >= toks.size()) continue;
      const Token& body = toks[close + 1];
      const bool empty_body =
          body.text == ";" ||
          (body.text == "{" && close + 2 < toks.size() && toks[close + 2].text == "}");
      if (empty_body) flag(i, "an empty-body while loop (busy-wait)");
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// WL011: bounded-wait discipline (plain token scan; same path scope)
// ---------------------------------------------------------------------------
//
// Heuristic: a loop whose header or body mentions a waiting/retrying verb
// (sleep, backoff, stall_until, retry — matched case-insensitively as
// identifier substrings, so `clock.sleep`, `compute_backoff`, `retries` all
// count) must also mention a bound marker somewhere in the same span: an
// attempt counter, a budget, a deadline/timeout/expiry check, a max or a
// cap. A retry loop with neither spins forever against a dependency that
// never recovers — exactly the failure mode the deadline-propagation work
// exists to rule out. The bound need not be *proven* effective (this is a
// token scan, not a solver); it must merely be *visible*, which keeps the
// false-positive rate near zero while catching the classic
// `while (!ok) { backoff(); }` shape.

/// True when any identifier token in [begin, end) contains one of `words`
/// as a case-insensitive substring.
bool span_mentions(const std::vector<Token>& toks, std::size_t begin, std::size_t end,
                   const char* const* words, std::size_t count) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (!toks[i].is_ident) continue;
    std::string lower = toks[i].text;
    for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    for (std::size_t w = 0; w < count; ++w) {
      if (lower.find(words[w]) != std::string::npos) return true;
    }
  }
  return false;
}

/// Index one past a loop body starting at `open`: the matching `}` of a
/// block, or the `;` of a single-statement body.
std::size_t loop_body_end(const std::vector<Token>& toks, std::size_t open) {
  if (open >= toks.size()) return open;
  if (toks[open].text == "{") {
    int depth = 0;
    for (std::size_t j = open; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) return j + 1;
    }
    return toks.size();
  }
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == ";") return j + 1;
  }
  return toks.size();
}

void check_wl011(const std::string& path, const std::vector<Token>& toks,
                 const NotesMap& notes, std::vector<Violation>* violations) {
  static const char* const kTriggers[] = {"sleep", "backoff", "stall_until", "retry"};
  static const char* const kBounds[] = {"attempt", "budget",  "deadline", "remaining",
                                        "expired", "timeout", "max",      "cap"};

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].is_ident) continue;
    const std::string& t = toks[i].text;
    std::size_t begin = 0;
    std::size_t end = 0;
    if ((t == "while" || t == "for") && i + 1 < toks.size() && toks[i + 1].text == "(") {
      if (t == "while" && i > 0 && toks[i - 1].text == "}") {
        // Possibly a do-while tail; the span was already handled at the
        // `do`. Same brace-matching walk as WL010's busy-wait carve-out.
        int depth = 0;
        std::size_t open = i - 1;
        for (std::size_t j = i; j-- > 0;) {
          if (toks[j].text == "}") ++depth;
          if (toks[j].text == "{" && --depth == 0) {
            open = j;
            break;
          }
        }
        if (open > 0 && toks[open - 1].text == "do") continue;
      }
      const std::size_t close = match_paren(toks, i + 1);
      begin = i + 1;
      end = loop_body_end(toks, close + 1);
    } else if (t == "do" && i + 1 < toks.size() && toks[i + 1].text == "{") {
      begin = i + 1;
      end = loop_body_end(toks, i + 1);
      // Fold the tail condition into the span — `} while (retries_left());`
      // is a perfectly good bound.
      if (end < toks.size() && toks[end].text == "while" && end + 1 < toks.size() &&
          toks[end + 1].text == "(") {
        end = match_paren(toks, end + 1) + 1;
      }
    } else {
      continue;
    }
    if (!span_mentions(toks, begin, end, kTriggers, std::size(kTriggers))) continue;
    if (span_mentions(toks, begin, end, kBounds, std::size(kBounds))) continue;
    const int line = toks[i].line;
    const int anchor = statement_anchor_line(toks, i);
    if (suppressed_at(notes, "bounded-ok", line, anchor)) continue;
    violations->push_back(
        {path, line, "WL011",
         "retry/wait loop with no visible bound: nothing in the loop caps "
         "attempts or checks a deadline/budget, so it can spin forever against "
         "a dependency that never recovers; cap it or consume a deadline "
         "(docs/RESILIENCE.md, docs/LINTING.md)"});
  }
}

// ---------------------------------------------------------------------------
// WL012: fence discipline on TaskQueue::submit (plain token scan; same scope)
// ---------------------------------------------------------------------------
//
// A campaign cell's sequential-execution guarantee rests entirely on its
// fence chain: submit(job, after, ...) with a literal std::nullopt `after`
// puts the task straight into the ready set, unordered against everything.
// That is occasionally what you mean (the head of a chain, a standalone
// telemetry task) — and then the call site must say so with
// `// wl-lint: unordered-ok`. The receiver heuristic keys on "queue" in the
// object name (`queue.submit`, `task_queue_->submit`), so unrelated submit()
// APIs stay out of scope; an `after` passed through a variable is assumed
// fence-carrying (this is a token scan, not a dataflow solver).

void check_wl012(const std::string& path, const std::vector<Token>& toks,
                 const NotesMap& notes, std::vector<Violation>* violations) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].is_ident || toks[i].text != "submit") continue;
    if (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->")) continue;
    if (i < 2 || !toks[i - 2].is_ident) continue;
    // Receiver must name a queue (case-insensitive substring).
    std::string receiver = toks[i - 2].text;
    for (char& c : receiver) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (receiver.find("queue") == std::string::npos) continue;
    if (toks[i + 1].text != "(") continue;
    const std::size_t close = match_paren(toks, i + 1);

    // Walk the top-level arguments; the 2nd is `after`.
    std::size_t arg = 1;           // current argument ordinal
    bool after_is_nullopt = false;
    int depth = 0;
    for (std::size_t j = i + 2; j < close && j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (depth == 0 && t == ",") {
        ++arg;
        continue;
      }
      if (arg == 2 && toks[j].is_ident && t == "nullopt") after_is_nullopt = true;
    }
    if (!after_is_nullopt) continue;

    const int line = toks[i].line;
    const int anchor = statement_anchor_line(toks, i);
    if (suppressed_at(notes, "unordered-ok", line, anchor)) continue;
    violations->push_back(
        {path, line, "WL012",
         "TaskQueue::submit with a literal std::nullopt `after` enters the ready "
         "set with no ordering fence; cell stages must ride their chain's fence, "
         "and a genuinely order-free task needs an explicit "
         "`// wl-lint: unordered-ok` (docs/PERFORMANCE.md, docs/LINTING.md)"});
  }
}

}  // namespace

SymbolIndex build_symbol_index(const std::vector<SourceFile>& sources) {
  SymbolIndex index;
  Options options;
  NotesMap empty_notes;
  for (const SourceFile& source : sources) {
    const Scan scan = scan_source(source.content);
    StructureWalker walker{source.path, scan.tokens, empty_notes, options};
    walker.out_index = &index;
    walker.run();
  }
  return index;
}

// Entry point used by lint_source (lint.cpp): run the dataflow passes and
// append their findings.
void run_dataflow_passes(const std::string& path, const Scan& scan, const NotesMap& notes,
                         const Options& options, const SymbolIndex& index,
                         std::vector<Violation>* violations) {
  StructureWalker walker{path, scan.tokens, notes, options};
  walker.index = &index;
  walker.violations = violations;
  walker.run();

  if (options.assume_scoped || scoped_for_wl009(path)) {
    check_wl009(path, scan.tokens, notes, violations);
    check_wl010(path, scan.tokens, notes, violations);
    check_wl011(path, scan.tokens, notes, violations);
    check_wl012(path, scan.tokens, notes, violations);
  }
}

}  // namespace wideleak::lint
