// wideleak-lint: the repo's key-material hygiene and concurrency-discipline
// analyzer.
//
// v2 is a deliberately small, LLVM-free multi-pass analyzer: a real
// tokenizer, a declaration/symbol index built across every translation unit
// handed to one invocation, and an intra-procedural dataflow pass on top.
// It enforces the secret-handling and concurrency discipline the WideLeak
// paper shows real CDMs lacking (CWE-922 / CVE-2021-0639, timing oracles on
// MAC checks, races on session state):
//
//   WL001  secret-named values (or SecretBytes::reveal()) flowing into a
//          log/encode sink: WL_LOG, hex_encode, base64_encode, to_string.
//          (CWE-532: key material in log output.)
//   WL002  ==, !=, memcmp or std::equal comparing buffers named like
//          mac/signature/tag/digest instead of constant_time_equal.
//          (CWE-208: observable timing discrepancy.)
//   WL003  owning `Bytes` declarations named like key/keybox/secret inside
//          the key-handling subtrees (src/crypto, src/widevine,
//          src/ott/custom_drm) — must be wideleak::SecretBytes.
//          (CWE-922 / CWE-316: secret in cleartext-on-teardown memory.)
//   WL004  raw `Bytes` returned by value from a secret-named accessor
//          without an explicit `// wl-lint: reveal-ok` annotation.
//          (CWE-200: uncontrolled secret exposure across an API edge.)
//   WL005  `catch (...)` whose handler neither rethrows (throw /
//          std::rethrow_exception) nor logs (WL_LOG / log_line) — the
//          failure disappears, which is how degraded-mode bugs hide.
//          (CWE-391: unchecked error condition.)
//   WL006  function parameters taking `Bytes` by value inside the
//          data-plane subtrees (src/media, src/crypto) — every call site
//          pays a heap copy; take BytesView (or Bytes&& when ownership
//          genuinely transfers).
//   WL007  secret taint: a value produced by SecretBytes::reveal() /
//          reveal_copy(), keybox parsing or a key-ladder derive that
//          reaches a log/encode sink or a net:: send through ANY chain of
//          local assignments — not just direct uses — is flagged.
//          (CWE-532 / CWE-319: laundered secret reaches an output channel.)
//   WL008  lock discipline: member fields annotated WL_GUARDED_BY(mutex)
//          (support/annotations.hpp) may only be read or written while a
//          lock_guard / unique_lock / scoped_lock on the named mutex is in
//          scope, or inside a method annotated WL_REQUIRES(mutex).
//          (CWE-667: improper locking on shared session/stats state.)
//   WL009  determinism hygiene: std::random_device, rand()/srand(), the
//          std::chrono clocks and unseeded std::mt19937 are banned inside
//          src/core, src/net and src/ott — SimClock and
//          derive_stream_seed(...) are the only approved time/randomness
//          sources, so the bit-identical-replay guarantee stays
//          machine-checked. (Reproducibility contract, docs/LINTING.md.)
//   WL010  scheduler hygiene: std::this_thread::sleep_for/sleep_until, the
//          POSIX sleeps (sleep/usleep/nanosleep) and empty-body while
//          busy-waits are banned inside src/core, src/net and src/ott —
//          a wait must go through SimClock::sleep so the campaign task
//          queue can park it on the timer wheel and run other cells'
//          work meanwhile. (Pipelined-scheduler contract, docs/LINTING.md.)
//   WL011  bounded-wait discipline: a loop inside src/core, src/net or
//          src/ott that sleeps, backs off, stalls or retries must carry a
//          visible bound — an attempt cap, budget, deadline, timeout or
//          remaining-work check — so no retry/wait loop can spin forever
//          against a dependency that never recovers. (Deadline-propagation
//          contract, docs/RESILIENCE.md.)
//   WL012  fence discipline: a `*queue*.submit(...)` call inside src/core,
//          src/net or src/ott whose `after` argument is a literal
//          std::nullopt enters the ready set with no ordering fence. Cell
//          chains rely on per-cell fences for their sequential-execution
//          guarantee, so an unfenced submission must carry an explicit
//          `// wl-lint: unordered-ok` acknowledging the task really is
//          order-free. (Segment-pipelining contract, docs/PERFORMANCE.md.)
//
// Suppressions, written as ordinary comments on the flagged line, the line
// above it, or the line above the start of a multi-line declaration /
// statement. Several keys may share one comment, comma- or space-separated:
//   // wl-lint: log-ok          (WL001)
//   // wl-lint: ct-ok           (WL002)
//   // wl-lint: raw-bytes-ok    (WL003)
//   // wl-lint: reveal-ok       (WL004)
//   // wl-lint: catch-ok        (WL005)
//   // wl-lint: byval-ok        (WL006)
//   // wl-lint: taint-ok        (WL007)
//   // wl-lint: lock-ok         (WL008)
//   // wl-lint: det-ok          (WL009)
//   // wl-lint: wait-ok         (WL010)
//   // wl-lint: bounded-ok      (WL011)
//   // wl-lint: unordered-ok    (WL012)
//   // wl-lint: log-ok,ct-ok    (both at once)
//
// Fixture self-test: every line carrying `// expect: WLxxx[,WLyyy]` must be
// flagged with exactly those rules, and no unmarked line may be flagged.
#pragma once

#include <set>
#include <string>
#include <vector>

namespace wideleak::lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;     // "WL001".."WL012"
  std::string message;  // human-readable finding
};

/// One translation unit handed to the analyzer (path + full contents).
struct SourceFile {
  std::string path;
  std::string content;
};

// ---------------------------------------------------------------------------
// Symbol index (pass 2): declarations harvested across all translation units
// of one invocation. WL008 keys on it; tests/lint_tool_test.cpp unit-tests it.
// ---------------------------------------------------------------------------

/// A member field annotated `WL_GUARDED_BY(mutex)`.
struct GuardedField {
  std::string cls;    // enclosing class/struct name
  std::string field;  // member name
  std::string mutex;  // the guarding mutex member's name
  std::string file;
  int line = 0;
};

/// A method annotated `WL_REQUIRES(mutex)`: its body may touch fields guarded
/// by `mutex` without re-locking, and call sites must hold `mutex`.
struct RequiredMethod {
  std::string cls;
  std::string method;
  std::string mutex;
  std::string file;
  int line = 0;
};

struct SymbolIndex {
  std::vector<GuardedField> guarded_fields;
  std::vector<RequiredMethod> required_methods;

  const GuardedField* find_field(const std::string& cls, const std::string& field) const;
  const RequiredMethod* find_method(const std::string& cls, const std::string& method) const;
};

/// Build the cross-TU declaration index (annotation macros, class membership).
/// Per-file harvesting is order-independent; the result lists entries in the
/// order the sources were given.
SymbolIndex build_symbol_index(const std::vector<SourceFile>& sources);

// ---------------------------------------------------------------------------
// Linting
// ---------------------------------------------------------------------------

struct Options {
  // Treat every file as if it lived in every path-scoped rule's directory
  // (WL003/WL006/WL009). Used by the fixture self-test, whose files live
  // under tools/lint_fixtures.
  bool assume_scoped = false;

  // Rules to skip entirely (e.g. {"WL006"} for the tests/bench relaxed set).
  std::set<std::string> disabled_rules;

  // Cross-TU declaration index. When null, an index is built from the single
  // file being linted (fixtures are self-contained).
  const SymbolIndex* index = nullptr;
};

/// Lint one translation unit. `path` is used for diagnostics and for the
/// path-scoped rules; `source` is the file's full contents.
std::vector<Violation> lint_source(const std::string& path, const std::string& source,
                                   const Options& options = {});

/// Lint a file from disk.
std::vector<Violation> lint_file(const std::string& path, const Options& options = {});

/// Expectation markers (`// expect: WL001,WL003`) harvested from a fixture.
struct Expectation {
  int line = 0;
  std::vector<std::string> rules;
};
std::vector<Expectation> collect_expectations(const std::string& source);

/// All rule ids, in order ("WL001".."WL012").
const std::vector<std::string>& all_rules();

/// One-line description of a rule id (used by the SARIF rules table).
std::string rule_description(const std::string& rule);

// ---------------------------------------------------------------------------
// Output formats + baseline (pass 3: reporting)
// ---------------------------------------------------------------------------

/// Render findings as plain text, one `file:line: RULE: message` per line.
std::string render_text(const std::vector<Violation>& violations);

/// Render findings as a JSON object {"version":1,"findings":[...]}.
std::string render_json(const std::vector<Violation>& violations);

/// Render findings as SARIF 2.1.0 (one run, driver "wideleak-lint", full
/// rules table, one result per finding).
std::string render_sarif(const std::vector<Violation>& violations);

/// A checked-in baseline of grandfathered findings. Text format, one
/// `path|rule|line` entry per line, `#` comments allowed. The shipped
/// baseline (tools/lint_baseline.txt) is empty: every finding in the tree
/// has been fixed or explicitly suppressed.
struct Baseline {
  // Multiset of entry keys (path|rule|line) still unmatched.
  std::vector<std::string> entries;
};

Baseline load_baseline(const std::string& path);
std::string render_baseline(const std::vector<Violation>& violations);

/// Split findings into (new, baselined). Each baseline entry absorbs at most
/// one finding with the same path, rule and line. Returns the findings NOT
/// covered by the baseline; `stale` (if non-null) receives baseline entries
/// that matched nothing (candidates for deletion).
std::vector<Violation> filter_baseline(const std::vector<Violation>& violations,
                                       const Baseline& baseline,
                                       std::vector<std::string>* stale = nullptr);

}  // namespace wideleak::lint
