// wideleak-lint: the repo's key-material hygiene analyzer.
//
// A deliberately small, LLVM-free static analysis pass: lexical scanning
// plus lightweight declaration parsing, tuned to this codebase's idioms.
// It enforces the secret-handling discipline the WideLeak paper shows real
// CDMs lacking (CWE-922 / CVE-2021-0639, timing oracles on MAC checks):
//
//   WL001  secret-named values (or SecretBytes::reveal()) flowing into a
//          log/encode sink: WL_LOG, hex_encode, base64_encode, to_string.
//          (CWE-532: key material in log output.)
//   WL002  ==, !=, memcmp or std::equal comparing buffers named like
//          mac/signature/tag/digest instead of constant_time_equal.
//          (CWE-208: observable timing discrepancy.)
//   WL003  owning `Bytes` declarations named like key/keybox/secret inside
//          the key-handling subtrees (src/crypto, src/widevine,
//          src/ott/custom_drm) — must be wideleak::SecretBytes.
//          (CWE-922 / CWE-316: secret in cleartext-on-teardown memory.)
//   WL004  raw `Bytes` returned by value from a secret-named accessor
//          without an explicit `// wl-lint: reveal-ok` annotation.
//          (CWE-200: uncontrolled secret exposure across an API edge.)
//   WL005  `catch (...)` whose handler neither rethrows (throw /
//          std::rethrow_exception) nor logs (WL_LOG / log_line) — the
//          failure disappears, which is how degraded-mode bugs hide.
//          (CWE-391: unchecked error condition.)
//   WL006  function parameters taking `Bytes` by value inside the
//          data-plane subtrees (src/media, src/crypto) — every call site
//          pays a heap copy; take BytesView (or Bytes&& when ownership
//          genuinely transfers).
//
// Suppressions, written as ordinary comments on the flagged line or the
// line above:
//   // wl-lint: log-ok        (WL001)
//   // wl-lint: ct-ok         (WL002)
//   // wl-lint: raw-bytes-ok  (WL003)
//   // wl-lint: reveal-ok     (WL004)
//   // wl-lint: catch-ok      (WL005)
//   // wl-lint: byval-ok      (WL006)
//
// Fixture self-test: every line carrying `// expect: WLxxx[,WLyyy]` must be
// flagged with exactly those rules, and no unmarked line may be flagged.
#pragma once

#include <string>
#include <vector>

namespace wideleak::lint {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;     // "WL001".."WL006"
  std::string message;  // human-readable finding
};

struct Options {
  // Treat every file as if it lived in a WL003/WL006-scoped directory (used
  // by the fixture self-test, whose files live under tools/lint_fixtures).
  bool assume_scoped = false;
};

/// Lint one translation unit. `path` is used for diagnostics and for the
/// WL003 scope decision; `source` is the file's full contents.
std::vector<Violation> lint_source(const std::string& path, const std::string& source,
                                   const Options& options = {});

/// Lint a file from disk.
std::vector<Violation> lint_file(const std::string& path, const Options& options = {});

/// Expectation markers (`// expect: WL001,WL003`) harvested from a fixture.
struct Expectation {
  int line = 0;
  std::vector<std::string> rules;
};
std::vector<Expectation> collect_expectations(const std::string& source);

}  // namespace wideleak::lint
