// Reporting layer: text/JSON/SARIF emitters and the grandfathered-findings
// baseline. All formats render deterministically from a sorted findings list
// so CI artifacts diff cleanly run to run.
#include <fstream>
#include <map>
#include <sstream>

#include "lint.hpp"
#include "scan.hpp"

namespace wideleak::lint {

using internal::json_escape;

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> kRules = {
      "WL001", "WL002", "WL003", "WL004", "WL005", "WL006", "WL007", "WL008", "WL009",
      "WL010", "WL011", "WL012"};
  return kRules;
}

std::string rule_description(const std::string& rule) {
  if (rule == "WL001") return "secret flows into a log/encode sink (CWE-532)";
  if (rule == "WL002") return "variable-time comparison of authentication material (CWE-208)";
  if (rule == "WL003") return "key material held in raw Bytes instead of SecretBytes (CWE-922)";
  if (rule == "WL004") return "secret accessor returns raw Bytes without reveal-ok (CWE-200)";
  if (rule == "WL005") return "catch (...) swallows the error (CWE-391)";
  if (rule == "WL006") return "by-value Bytes parameter on the data plane (heap copy per call)";
  if (rule == "WL007") return "tainted secret reaches a sink through local assignments (CWE-532)";
  if (rule == "WL008") return "WL_GUARDED_BY field accessed without holding its mutex (CWE-667)";
  if (rule == "WL009") return "nondeterministic time/randomness source in a deterministic subtree";
  if (rule == "WL010") return "thread-blocking sleep or busy-wait outside the task scheduler";
  if (rule == "WL011") return "retry/wait loop with no attempt cap or deadline check";
  if (rule == "WL012") return "TaskQueue::submit with no ordering fence and no unordered-ok";
  return "unknown rule";
}

std::string render_text(const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const Violation& v : violations) {
    out << v.file << ":" << v.line << ": " << v.rule << ": " << v.message << "\n";
  }
  return out.str();
}

std::string render_json(const std::vector<Violation>& violations) {
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"findings\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(v.file) << "\", \"line\": " << v.line
        << ", \"rule\": \"" << v.rule << "\", \"message\": \"" << json_escape(v.message)
        << "\"}";
  }
  out << (violations.empty() ? "]" : "\n  ]") << ",\n  \"count\": " << violations.size()
      << "\n}\n";
  return out.str();
}

std::string render_sarif(const std::vector<Violation>& violations) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"wideleak-lint\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"informationUri\": \"docs/LINTING.md\",\n"
      << "          \"rules\": [";
  const std::vector<std::string>& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "            {\"id\": \"" << rules[i] << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rule_description(rules[i])) << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\n"
        << "          \"ruleId\": \"" << v.rule << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(v.message) << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \"" << json_escape(v.file)
        << "\"},\n"
        << "                \"region\": {\"startLine\": " << v.line << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
  }
  out << (violations.empty() ? "]\n" : "\n      ]\n") << "    }\n  ]\n}\n";
  return out.str();
}

namespace {

std::string baseline_key(const Violation& v) {
  return v.file + "|" + v.rule + "|" + std::to_string(v.line);
}

}  // namespace

Baseline load_baseline(const std::string& path) {
  Baseline baseline;
  std::ifstream in(path);
  if (!in) return baseline;  // a missing baseline is an empty baseline
  std::string line;
  while (std::getline(in, line)) {
    // Trim, drop comments and blanks.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r')) {
      line.pop_back();
    }
    std::size_t start = 0;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t')) ++start;
    line.erase(0, start);
    if (!line.empty()) baseline.entries.push_back(line);
  }
  return baseline;
}

std::string render_baseline(const std::vector<Violation>& violations) {
  std::ostringstream out;
  out << "# wideleak-lint baseline: grandfathered findings, one `path|rule|line`\n"
      << "# entry per line. Regenerate with `wideleak-lint --project ... "
         "--write-baseline <this file>`.\n"
      << "# An empty baseline means the tree is clean; keep it that way.\n";
  for (const Violation& v : violations) out << baseline_key(v) << "\n";
  return out.str();
}

std::vector<Violation> filter_baseline(const std::vector<Violation>& violations,
                                       const Baseline& baseline,
                                       std::vector<std::string>* stale) {
  std::map<std::string, int> budget;
  for (const std::string& entry : baseline.entries) ++budget[entry];
  std::vector<Violation> fresh;
  for (const Violation& v : violations) {
    auto it = budget.find(baseline_key(v));
    if (it != budget.end() && it->second > 0) {
      --it->second;
    } else {
      fresh.push_back(v);
    }
  }
  if (stale) {
    for (const auto& [key, remaining] : budget) {
      for (int i = 0; i < remaining; ++i) stale->push_back(key);
    }
  }
  return fresh;
}

}  // namespace wideleak::lint
