// WL002 fixture: authentication material (mac/signature/tag/digest) must be
// compared with constant_time_equal, never ==/!=/memcmp/std::equal. A
// variable-time compare returns at the first mismatching byte, handing a
// remote caller a per-position oracle (CWE-208).
#include <cstring>

bool wl002_bad(const Bytes& mac, const Bytes& expected_mac, const Bytes& signature,
               const Bytes& expected_sig, const Bytes& digest, const Bytes& other_digest,
               const LicenseResponse& response, const Bytes& claimed_tag) {
  if (mac == expected_mac) return true;                                           // expect: WL002
  if (response.tag != claimed_tag) return false;                                  // expect: WL002
  if (std::memcmp(signature.data(), expected_sig.data(), 32) == 0) return true;   // expect: WL002
  return std::equal(digest.begin(), digest.end(), other_digest.begin());          // expect: WL002
}

bool wl002_good(const Bytes& mac, const Bytes& expected_mac, const HttpRequest& req) {
  if (!constant_time_equal(mac, expected_mac)) return false;
  const auto it = req.headers.find("authorization");
  if (it == req.headers.end()) return false;
  // Length is public information; only the contents need constant time.
  if (mac.size() != expected_mac.size()) return false;
  // Comparing enum state, not buffers:
  if (req.status == Status::Denied) return false;
  // A reviewed exception (e.g. test-only scaffolding) must opt in:
  return mac == expected_mac;  // wl-lint: ct-ok
}
