// WL008 fixture: lock discipline via WL_GUARDED_BY / WL_REQUIRES. A field
// annotated WL_GUARDED_BY(m) may only be touched while m is held (via a
// lock_guard / unique_lock / scoped_lock in scope, or from a method that is
// itself annotated WL_REQUIRES(m)). Calls to WL_REQUIRES methods are checked
// at the call site.
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <mutex>

class StatsSink {
 public:
  StatsSink() { value_ = 1; }  // constructors are exempt (no sharing yet)

  void bump() {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++value_;  // clean: mutex_ held
  }

  int read_unlocked() {
    return value_;  // expect: WL008
  }

  void locked_add(int n) WL_REQUIRES(mutex_) {
    value_ += n;  // clean: caller holds mutex_ by contract
  }

  void forgot_the_lock() {
    locked_add(2);  // expect: WL008
  }

  void with_the_lock() {
    const std::lock_guard<std::mutex> lock(mutex_);
    locked_add(3);  // clean: lock held across the WL_REQUIRES call
  }

  int snapshot() {
    std::unique_lock<std::mutex> lock(mutex_);
    return value_;  // clean: unique_lock counts too
  }

  int racy_peek() const {
    return value_;  // wl-lint: lock-ok -- monitoring-only approximate read
  }

 private:
  std::mutex mutex_;
  int value_ WL_GUARDED_BY(mutex_) = 0;
};
