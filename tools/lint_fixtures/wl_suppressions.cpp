// Regression fixture for suppression parsing. Everything here is suppressed,
// so the file must produce zero findings — it exercises:
//
//   1. several keys sharing one `// wl-lint:` comment (`log-ok,ct-ok`),
//   2. a suppression above a declaration that spans multiple lines (the
//      finding lands on a continuation line; the statement-anchor lookup
//      must connect it back to the comment),
//   3. keys parsed as whole tokens (`ct-ok` must not match inside
//      `strict-ok`, and punctuation ends the key list).
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <string>

struct Keys {
  SecretBytes mac_key;
};

std::string multi_key_one_comment(const Keys& keys, const Bytes& tag) {
  // wl-lint: log-ok,ct-ok
  WL_LOG(Debug) << (tag == keys.mac_key) << " " << hex_encode(keys.mac_key);
  return "ok";
}

// wl-lint: byval-ok -- ownership transfers to the ingest queue
void ingest_samples(const std::string& label,
                    Bytes sample_block);

bool anchored_comparison(const Bytes& computed_mac, const Bytes& expected_mac) {
  // wl-lint: ct-ok -- operands are public test vectors
  const bool ok = (computed_mac
                   == expected_mac);
  return ok;
}
