// WL008 fixture: striped locks — the DrmService session-table pattern. A
// nested Shard struct carries its own mutex, and every guarded field names
// that per-shard mutex, not a global one. The analyzer scopes guards to the
// innermost class, so Shard's discipline is checked independently of the
// outer table's own guarded state.
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <mutex>

class StripedSessionTable {
 public:
  struct Shard {
    Shard() { live = 0; }  // constructors are exempt (no sharing yet)

    void open() {
      const std::lock_guard<std::mutex> lock(mutex);
      ++live;  // clean: this shard's own stripe is held
      ++opened;
    }

    int peek_unlocked() {
      return live;  // expect: WL008
    }

    void evict_locked() WL_REQUIRES(mutex) {
      --live;  // clean: caller holds the stripe by contract
      ++evicted;
    }

    void reclaim_without_lock() {
      evict_locked();  // expect: WL008
    }

    void reclaim() {
      const std::lock_guard<std::mutex> lock(mutex);
      evict_locked();  // clean: stripe held across the WL_REQUIRES call
    }

    int snapshot() {
      std::unique_lock<std::mutex> lock(mutex);
      return opened - evicted;  // clean: unique_lock counts too
    }

    int approximate_load() const {
      return live;  // wl-lint: lock-ok -- shard-picker heuristic, staleness fine
    }

    mutable std::mutex mutex;
    int live WL_GUARDED_BY(mutex) = 0;
    int opened WL_GUARDED_BY(mutex) = 0;
    int evicted WL_GUARDED_BY(mutex) = 0;
  };

  void bump_epoch() {
    const std::lock_guard<std::mutex> lock(table_mutex_);
    ++epoch_;  // clean: the outer table state uses the outer mutex
  }

  int epoch_unlocked() {
    return epoch_;  // expect: WL008
  }

 private:
  std::mutex table_mutex_;
  int epoch_ WL_GUARDED_BY(table_mutex_) = 0;
};
