// WL001 fixture: secret-named values must never reach a log/encode sink
// (WL_LOG, hex_encode, base64_encode, to_string). This is the CWE-532
// leak class: the WideLeak study found key material in debug output.
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <string>

struct SessionKeys {
  SecretBytes enc_key;
  SecretBytes mac_key_client;
};

std::string wl001_bad(const SessionKeys& keys, const SecretBytes& device_key) {
  WL_LOG(Info) << "session enc key = " << hex_encode(keys.enc_key);  // expect: WL001
  WL_LOG(Debug) << "raw device key " << device_key.reveal();         // expect: WL001
  const std::string dump = base64_encode(device_key.reveal());       // expect: WL001
  return to_string(keys.mac_key_client);                             // expect: WL001
}

std::string wl001_good(const SessionKeys& keys, const KeyId& key_id) {
  WL_LOG(Info) << "license for kid " << hex_encode(key_id);
  WL_LOG(Info) << "derived " << keys.count() << " session keys";
  // A reviewed dump site (debug tooling) must opt in explicitly:
  WL_LOG(Trace) << hex_encode(keys.enc_key.reveal());  // wl-lint: log-ok
  return to_string(key_id);
}
