// WL007 fixture: taint tracking through chains of local assignments. WL001
// catches a secret *named* value in a sink; WL007 catches the laundered
// version — key material copied into innocently-named locals that then reach
// a log/encode sink or a network send.
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <string>

struct Provisioner {
  SecretBytes device_key_;
  Keybox keybox_;

  void leak_through_locals() {
    Bytes raw = device_key_.reveal_copy();
    Bytes hop = raw;
    WL_LOG(Info) << "payload: " << hex_encode(hop);  // expect: WL007
  }

  std::string leak_derived(const Bytes& seed) {
    SessionKeys ks = derive_session_keys(seed, seed, seed);
    return to_string(ks);  // expect: WL007
  }

  void leak_to_network(HttpClient& client) {
    Bytes material(keybox_.device_key().reveal());
    client.post("/beacon", material);  // expect: WL007
  }

  void clean_paths(HttpClient& client) {
    // Benign members of a tainted buffer carry no content:
    Bytes raw = device_key_.reveal_copy();
    WL_LOG(Info) << "buffer holds " << raw.size() << " bytes";
    // Overwriting with clean data clears the taint:
    raw = Bytes();
    WL_LOG(Info) << "cleared: " << hex_encode(raw);
    // Untainted values flow freely:
    Bytes nonce = client.fetch_nonce();
    client.post("/telemetry", nonce);
  }

  void reviewed_dump() {
    Bytes raw = device_key_.reveal_copy();
    // wl-lint: taint-ok -- reviewed diagnostic dump behind a debug flag
    WL_LOG(Trace) << hex_encode(raw);
  }
};

// Taint never crosses a function boundary: parameters start clean.
std::string clean_param(const Bytes& payload) { return to_string(payload); }
