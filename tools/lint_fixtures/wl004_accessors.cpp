// WL004 fixture: an accessor that hands out secret bytes by value creates an
// unmanaged copy the class can no longer wipe (CWE-200). Such API edges must
// either return `const SecretBytes&` / BytesView or carry an explicit
// `// wl-lint: reveal-ok` review annotation.
#include <cstddef>

class KeyboxStore {
 public:
  Bytes device_key() const;                // expect: WL004
  Bytes export_keybox(bool redact) const;  // expect: WL004
  // Reviewed: flash-image serialization needs the raw root.  wl-lint: reveal-ok
  Bytes root_key_material() const;
  const Bytes& key_data() const;         // by-reference, server-opaque field
  const SecretBytes& session_key() const;  // managed type is always fine
  BytesView key_view() const;            // a view does not copy ownership out
  std::size_t key_count() const;         // not a Bytes return
 private:
  SecretBytes device_key_;
};
