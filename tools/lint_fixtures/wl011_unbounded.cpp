// WL011 fixture: bounded-wait discipline. Inside src/core, src/net and
// src/ott a loop that sleeps, backs off or retries must carry a visible
// bound — an attempt cap, a budget, a deadline/timeout check — so no
// retry/wait loop can spin forever against a dependency that never
// recovers. The rule wants the bound *visible* in the loop span, not
// proven: `while (!ok) { clock.sleep(backoff()); }` is the shape it exists
// to catch.
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <cstdint>

void bad_unbounded_backoff(Service& service, SimClock& clock) {
  while (!service.ok()) {  // expect: WL011
    clock.sleep(service.backoff_ticks());
  }
}

void bad_unbounded_retry(Client& client) {
  for (;;) {  // expect: WL011
    if (client.retry_once()) break;
  }
}

void bad_do_while_retry(Session& session) {
  do {  // expect: WL011
    session.retry();
  } while (!session.open());
}

void bad_single_statement_body(Service& service, SimClock& clock) {
  while (!service.ok()) clock.sleep(service.poll_ticks());  // expect: WL011
}

void good_attempt_capped(Service& service, SimClock& clock) {
  // An attempt counter in the header bounds the retries.
  for (int attempt = 0; attempt < 5; ++attempt) {
    if (service.ok()) break;
    clock.sleep(service.backoff_ticks());
  }
}

void good_deadline_checked(Service& service, SimClock& clock, std::uint64_t deadline) {
  // A deadline consumed by the condition bounds the wait.
  while (!service.ok() && clock.now() < deadline) {
    clock.sleep(service.retry_ticks());
  }
}

void good_budget_in_body(Service& service, SimClock& clock) {
  while (!service.ok()) {
    if (service.budget_spent()) return;
    clock.sleep(service.retry_ticks());
  }
}

void good_no_waiting(Buffer& buffer) {
  // Plain iteration: no sleep/backoff/retry verbs, the rule stays silent.
  for (std::size_t i = 0; i < buffer.size(); ++i) buffer.touch(i);
}

void suppressed_externally_bounded(Service& service, SimClock& clock) {
  // The caller enforces the cap; the loop itself cannot see it.
  // wl-lint: bounded-ok
  while (!service.ok()) {
    clock.sleep(service.retry_ticks());
  }
}
