// WL012 fixture: fence discipline on TaskQueue::submit. A submit whose
// `after` argument is a literal std::nullopt enters the ready set with no
// ordering fence — a cell chain's sequential-execution guarantee rests on
// those fences, so an unfenced submission must carry an explicit
// `// wl-lint: unordered-ok` acknowledging the task really is order-free.
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <cstdint>

void bad_unfenced_head(TaskQueue& queue, FenceId done) {
  queue.submit([] {}, std::nullopt, done, 0, "setup");  // expect: WL012
}

void bad_unfenced_pointer_call(TaskQueue* task_queue, FenceId done) {
  task_queue->submit([] {}, std::nullopt, done, 3, "probe");  // expect: WL012
}

void bad_unfenced_multiline(TaskQueue& queue, FenceId done) {
  queue.submit(  // expect: WL012
      [] { touch_nothing(); }, std::nullopt, done, 1, "standalone");
}

void good_fenced_chain(TaskQueue& queue, FenceId prev, FenceId done) {
  // The chain stage rides its predecessor's fence.
  queue.submit([] {}, prev, done, 0, "audit");
}

void good_variable_after(TaskQueue& queue, std::optional<FenceId> after, FenceId done) {
  // An `after` passed through a variable is assumed fence-carrying; the
  // token scan only polices the literal-nullopt shape.
  queue.submit([] {}, after, done, 2, "play");
}

void good_suppressed_head(TaskQueue& queue, FenceId done) {
  // The head of a chain genuinely has no predecessor — acknowledged.
  // wl-lint: unordered-ok
  queue.submit([] {}, std::nullopt, done, 0, "head");
}

void good_nullopt_signals_only(TaskQueue& queue, FenceId prev) {
  // std::nullopt in the 3rd (signals) argument is fine: only the `after`
  // slot orders execution.
  queue.submit([] {}, prev, std::nullopt, 4, "tail");
}

void good_other_receiver(ThreadPool& pool) {
  // Not a task queue: unrelated submit() APIs stay out of scope.
  pool.submit([] {}, std::nullopt, 7);
}
