// WL010 fixture: scheduler hygiene. Inside src/core, src/net and src/ott a
// wait must go through SimClock::sleep so the campaign task queue can park
// it on the timer wheel and run other cells' work meanwhile. Thread-blocking
// sleeps and empty-body busy-waits stall a worker outside the scheduler.
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <chrono>
#include <thread>

void bad_thread_sleeps() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // expect: WL010
  const auto deadline = now_plus(5);
  std::this_thread::sleep_until(deadline);  // expect: WL010
}

void bad_posix_sleeps() {
  sleep(1);             // expect: WL010
  usleep(5000);         // expect: WL010
  timespec ts{0, 100};
  nanosleep(&ts, nullptr);  // expect: WL010
}

void bad_busy_waits(const Flag& flag) {
  while (!flag.is_set()) {  // expect: WL010
  }
  while (flag.pending()) ;  // expect: WL010
}

void good_simulated_wait(SimClock& clock) {
  // The approved wait: virtual time, surfaced to the scheduler's observer.
  clock.sleep(15);
}

void good_member_sleep(Session* session) {
  // A member named sleep is a wrapper, not libc.
  session->sleep(3);
  Backoff::sleep(2);
}

void good_bounded_loops(Queue& queue) {
  // Non-empty bodies do work per iteration — not busy-waits.
  while (!queue.empty()) queue.pop();
  do {
  } while (queue.rebalance());
}

void reviewed_stall(const WallDeadline& deadline) {
  // wl-lint: wait-ok -- sync-baseline pacing gate, measured as the baseline
  std::this_thread::sleep_until(deadline);
}
