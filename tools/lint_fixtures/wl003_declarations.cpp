// WL003 fixture: inside the key-handling subtrees, owning `Bytes`
// declarations named like key material must be wideleak::SecretBytes so the
// buffer is wiped on destruction (CWE-922 — the CVE-2021-0639 class, where
// a legacy CDM kept the 128-byte keybox in plainly scannable memory).
#include <map>
#include <string>

struct DeviceState {
  Bytes device_key;                          // expect: WL003
  Bytes keybox_seed_;                        // expect: WL003
  std::map<std::string, Bytes> app_secrets;  // expect: WL003
  SecretBytes session_key;   // correct type
  Bytes key_data;            // server-opaque token, not key material
  Bytes wrapped_key;         // ciphertext, safe to hold raw
  const Bytes& key_alias;    // a reference does not own the secret
};

void wl003_locals(Rng& rng) {
  Bytes content_key = rng.next_bytes(16);  // expect: WL003
  Bytes secret(32, 0x00);                  // expect: WL003
  Bytes iv = rng.next_bytes(16);           // not key material
  // Modelling the on-flash CVE artefact is a reviewed, explicit exception:
  Bytes legacy_keybox = rng.next_bytes(128);  // wl-lint: raw-bytes-ok
  SecretBytes device_key(rng.next_bytes(16));
  consume(BytesView(device_key.reveal()));
}
