// WL005 fixture: a `catch (...)` whose handler neither rethrows nor logs
// erases the failure entirely (CWE-391). In a fault-injection study that is
// the worst possible bug — a dropped connection silently becomes "worked".
// Handlers must surface the error (WL_LOG / log_line / throw /
// std::rethrow_exception) or carry an explicit `// wl-lint: catch-ok`.
#include <exception>

void swallow_everything() {
  try {
    risky();
  } catch (...) {  // expect: WL005
  }
}

void swallow_with_a_fallback() {
  try {
    risky();
  } catch (...) {  // expect: WL005
    use_default_configuration();
  }
}

void rethrow_is_fine() {
  try {
    risky();
  } catch (...) {
    cleanup();
    throw;
  }
}

void rethrow_exception_is_fine() {
  try {
    risky();
  } catch (...) {
    std::rethrow_exception(std::current_exception());
  }
}

void logging_is_fine() {
  try {
    risky();
  } catch (...) {
    WL_LOG(warn) << "risky() failed; continuing degraded";
  }
}

void log_line_is_fine() {
  try {
    risky();
  } catch (...) {
    log_line("risky() failed; continuing degraded");
  }
}

void typed_handlers_are_not_wl005s_business() {
  try {
    risky();
  } catch (const std::exception&) {
    // A typed handler names what it expects; swallowing a *known* error is
    // a design decision, not a hygiene violation.
  }
}

void reviewed_suppression() {
  try {
    best_effort_telemetry_flush();
    // Reviewed: telemetry is fire-and-forget by design.  wl-lint: catch-ok
  } catch (...) {
  }
}
