// WL006 fixture: `Bytes` parameters taken by value on data-plane functions.
// In src/media and src/crypto every such parameter is a heap copy per call —
// per sample on the decrypt path — so the signature must take BytesView
// (or Bytes&& when the callee genuinely assumes ownership).
//
// The self-test runs with assume_scoped, standing in for those directories;
// parameter names here deliberately avoid key-ish words so only WL006 fires.
#include <vector>

Bytes decrypt_sample(Bytes sample);                    // expect: WL006
void append_payload(const Bytes payload, Bytes& out);  // expect: WL006
void two_copies(Bytes head, Bytes tail);               // expect: WL006

// A defaulted by-value parameter still copies on every non-defaulted call.
void pad_stream(Bytes padding = Bytes(16, 0x00));  // expect: WL006

// Namespace qualification does not hide the copy.
void route_frame(wideleak::Bytes frame);  // expect: WL006

// Views and references are the fix — none of these fire.
void decrypt_view(BytesView sample);
void append_ref(const Bytes& payload, Bytes& out);
void sink_move(Bytes&& buffer);
std::vector<Bytes> samples_by_value();  // return type, not a parameter

void wl006_expressions(BytesView view) {
  // Constructor calls and brace-inits in expressions are not parameters.
  consume(Bytes(view.begin(), view.end()));
  consume(Bytes{0x01, 0x02});
  for (const Bytes& chunk : chunks(view)) consume(chunk);
}

// Ownership transfer into a long-lived cache is the reviewed exception.
void cache_segment(Bytes segment);  // wl-lint: byval-ok
