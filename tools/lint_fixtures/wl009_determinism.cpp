// WL009 fixture: determinism hygiene. Inside the deterministic subtrees
// (src/core, src/net, src/ott) the only approved sources of time and
// randomness are support::SimClock and derive_stream_seed — anything reading
// host state breaks bit-identical replay of campaign and chaos reports.
//
// Fixtures are lexed, not compiled — the types stand in for the real ones.
#include <chrono>
#include <random>

unsigned long long bad_wall_time() {
  const auto t0 = std::chrono::steady_clock::now();     // expect: WL009
  const auto wall = std::chrono::system_clock::now();   // expect: WL009
  return t0.time_since_epoch().count() + wall.time_since_epoch().count();
}

unsigned int bad_entropy() {
  std::random_device rd;  // expect: WL009
  srand(42);              // expect: WL009
  return rd() + rand();   // expect: WL009
}

unsigned int bad_hidden_seed() {
  std::mt19937 gen;  // expect: WL009
  return gen();
}

unsigned long long good_sources(const SimClock& clock, unsigned long long seed) {
  // Seeded from the campaign seed tree: the seed is named and replayable.
  std::mt19937_64 gen(derive_stream_seed(seed, "fixture"));
  return clock.now_ticks() + gen();
}

void good_type_mention(std::mt19937& gen) { gen.discard(1); }

unsigned long long reviewed_wall_clock() {
  // wl-lint: det-ok -- operator-facing throughput line, never fed back in
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<unsigned long long>(t0.time_since_epoch().count());
}
