#!/bin/sh
# Docs gate: verify that every relative link in the repo's markdown files
# points at a path that exists, and that every `#fragment` — in-page or on a
# relative .md link — names a real heading in the target file. Fragments are
# matched against GitHub's heading slugs (lowercase, punctuation stripped,
# spaces to dashes, `-N` suffixes on duplicates). External URLs
# (http/https/mailto) are ignored.
#
# Run from anywhere: the script resolves paths against the repo root. CI's
# docs job runs it directly; ctest registers it as `docs_md_links`.
set -u
cd "$(dirname "$0")/.." || exit 2

if command -v git >/dev/null 2>&1 && git rev-parse --git-dir >/dev/null 2>&1; then
  files=$(git ls-files --cached --others --exclude-standard '*.md')
else
  files=$(find . -name '*.md' -not -path './build*' -not -path './.git/*')
fi

# GitHub-style anchor slugs of every heading in a markdown file, one per
# line. Shares the fence logic below: headings inside fenced code blocks
# (e.g. a quoted `# comment`) are not anchors.
anchors_of() {
  awk '
    function run_len(s,   n) {
      sub(/^[[:space:]]*/, "", s)
      n = 0
      while (substr(s, n + 1, 1) == "`") n++
      return n
    }
    !fenced && /^[[:space:]]*```/ { fenced = run_len($0); next }
    fenced && /^[[:space:]]*```+[[:space:]]*$/ && run_len($0) >= fenced { fenced = 0; next }
    fenced { next }
    /^[[:space:]]*#+[[:space:]]/ {
      s = $0
      sub(/^[[:space:]]*#+[[:space:]]+/, "", s)
      sub(/[[:space:]]+#+[[:space:]]*$/, "", s)  # optional closing hashes
      s = tolower(s)
      gsub(/[^a-z0-9 _-]/, "", s)
      gsub(/ /, "-", s)
      if (seen[s]++) s = s "-" (seen[s] - 1)
      print s
    }' "$1" 2>/dev/null
}

status=0
checked=0
nl='
'
for f in $files; do
  dir=$(dirname "$f")
  # Every (target) of an inline [text](target) link, one per line. Fenced
  # code blocks are quoted content (e.g. SNIPPETS.md excerpts external
  # READMEs verbatim), so links inside them are not checked.
  # (CommonMark rules: a closing fence is a bare backtick run at least as
  # long as the opener — one with an info string like ```nginx opens a block
  # but never closes one, and a shorter run inside a ````-fenced block is
  # literal content.)
  links=$(awk '
    function run_len(s,   n) {
      sub(/^[[:space:]]*/, "", s)
      n = 0
      while (substr(s, n + 1, 1) == "`") n++
      return n
    }
    !fenced && /^[[:space:]]*```/ { fenced = run_len($0); next }
    fenced && /^[[:space:]]*```+[[:space:]]*$/ && run_len($0) >= fenced { fenced = 0; next }
    !fenced' "$f" 2>/dev/null \
    | grep -o '\[[^]]*\]([^)]*)' | sed 's/^.*](\([^)]*\))$/\1/')
  [ -n "$links" ] || continue
  old_ifs=$IFS
  IFS=$nl
  for link in $links; do
    IFS=$old_ifs
    case "$link" in
      http://* | https://* | mailto:*) continue ;;
    esac
    target=${link%%#*}
    frag=
    case "$link" in
      *"#"*) frag=${link#*#} ;;
    esac
    if [ -z "$target" ]; then
      # Pure in-page anchor: the heading must exist in this file.
      [ -n "$frag" ] || continue
      checked=$((checked + 1))
      if ! anchors_of "$f" | grep -Fqx "$frag"; then
        echo "BROKEN ANCHOR: $f -> $link" >&2
        status=1
      fi
      continue
    fi
    case "$target" in
      /*) path=".$target" ;;
      *) path="$dir/$target" ;;
    esac
    checked=$((checked + 1))
    if [ ! -e "$path" ]; then
      echo "BROKEN: $f -> $link" >&2
      status=1
      continue
    fi
    # A fragment on a markdown target must name a heading in that file.
    if [ -n "$frag" ] && [ -f "$path" ]; then
      case "$path" in
        *.md)
          if ! anchors_of "$path" | grep -Fqx "$frag"; then
            echo "BROKEN ANCHOR: $f -> $link" >&2
            status=1
          fi
          ;;
      esac
    fi
  done
  IFS=$old_ifs
done

if [ "$status" -eq 0 ]; then
  echo "check_md_links: $checked relative markdown link(s)/anchor(s) all resolve."
else
  echo "check_md_links: broken links found (see above)." >&2
fi
exit $status
